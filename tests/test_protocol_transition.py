"""Tests for the automatic protocol transition (Section 5.4, Table 1).

These tests drive the control switchlet through its three outcomes: a
successful transition, a fallback caused by a faulty new protocol, and a
fallback caused by old-protocol packets appearing after the transition
window.  Shorter suppression/validation timers are used so the tests run in
seconds of simulated time; the benchmark uses the paper's 30 s / 60 s.
"""

from __future__ import annotations

import pytest

from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import ALL_BRIDGES_MULTICAST, DEC_MANAGEMENT_MULTICAST, MacAddress
from repro.lan.nic import NetworkInterface
from repro.measurement.setups import build_ring
from repro.switchlets.bpdu import ConfigBpdu, DecBpdu

TRIGGER_MAC = MacAddress.from_string("02:aa:aa:aa:aa:aa")


def _trigger_frame():
    """An (inferior) IEEE BPDU that starts the transition, as the probe sends."""
    bpdu = ConfigBpdu(0xFFFF, TRIGGER_MAC.octets, 0, 0xFFFF, TRIGGER_MAC.octets, 1)
    return EthernetFrame(
        destination=ALL_BRIDGES_MULTICAST,
        source=TRIGGER_MAC,
        ethertype=int(EtherType.STP_8021D),
        payload=bpdu.encode(),
    )


def _dec_frame():
    """A stray DEC PDU, as a not-yet-transitioned bridge would emit."""
    pdu = DecBpdu(0xFFFF, TRIGGER_MAC.octets, 0, 0xFFFF, TRIGGER_MAC.octets, 1)
    return EthernetFrame(
        destination=DEC_MANAGEMENT_MULTICAST,
        source=TRIGGER_MAC,
        ethertype=int(EtherType.STP_DEC),
        payload=pdu.encode(),
    )


def _ring(n_bridges=2, buggy=False, suppression=3.0, validation=6.0):
    ring = build_ring(
        n_bridges=n_bridges,
        seed=9,
        with_control=True,
        suppression_period=suppression,
        validation_delay=validation,
        buggy_new_protocol=buggy,
    )
    injector = NetworkInterface(ring.network.sim, "injector", TRIGGER_MAC)
    injector.attach(ring.left_segment)
    return ring, injector


def _controls(ring):
    return [bridge.func.lookup("switchlet.control") for bridge in ring.bridges]


class TestSuccessfulTransition:
    def test_table1_state_sequence(self):
        ring, injector = _ring(n_bridges=2)
        sim = ring.network.sim
        sim.run_until(35.0)  # let the old protocol converge
        sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
        sim.run_until(sim.now + 20.0)
        for control in _controls(ring):
            assert control.state == control.STATE_TERMINATED
            assert control.validation_result[0] is True
            actions = [entry["action"] for entry in control.transition_log]
            assert actions == [
                "load/start control",
                "recv IEEE packet",
                "start IEEE",
                "30 seconds",
                "60 seconds",
                "pass tests",
            ]

    def test_old_protocol_suspended_new_running(self):
        ring, injector = _ring(n_bridges=2)
        sim = ring.network.sim
        sim.run_until(35.0)
        sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
        sim.run_until(sim.now + 20.0)
        for bridge in ring.bridges:
            assert not bridge.func.lookup("stp.dec").running
            assert bridge.func.lookup("stp.ieee").running

    def test_new_protocol_tree_matches_old(self):
        ring, injector = _ring(n_bridges=3)
        sim = ring.network.sim
        sim.run_until(35.0)
        old_snapshots = {
            bridge.name: bridge.func.lookup("stp.dec").snapshot() for bridge in ring.bridges
        }
        sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
        sim.run_until(sim.now + 20.0)
        for bridge in ring.bridges:
            new_snapshot = bridge.func.lookup("stp.ieee").snapshot()
            old_snapshot = old_snapshots[bridge.name]
            assert new_snapshot["root_mac"] == old_snapshot["root_mac"]
            assert new_snapshot["port_roles"] == old_snapshot["port_roles"]

    def test_transition_propagates_across_all_bridges(self):
        ring, injector = _ring(n_bridges=3)
        sim = ring.network.sim
        sim.run_until(35.0)
        sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
        sim.run_until(sim.now + 2.0)
        # Well before the validation window every bridge has switched.
        for bridge in ring.bridges:
            assert bridge.func.lookup("stp.ieee").running

    def test_control_requires_correct_preconditions(self, two_lan_bridge):
        from repro.exceptions import LoadError
        from repro.switchlets.packaging import (
            control_package,
            dumb_bridge_package,
            learning_bridge_package,
        )

        bridge = two_lan_bridge["bridge"]
        environment = bridge.environment.modules
        bridge.load_switchlet(dumb_bridge_package(environment))
        bridge.load_switchlet(learning_bridge_package(environment))
        # Neither protocol is loaded: the control switchlet must refuse.
        with pytest.raises(LoadError):
            bridge.load_switchlet(control_package(environment))


class TestFallback:
    def test_buggy_new_protocol_triggers_fallback(self):
        ring, injector = _ring(n_bridges=3, buggy=True)
        sim = ring.network.sim
        sim.run_until(35.0)
        sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
        sim.run_until(sim.now + 20.0)
        # The faulty protocol elects the wrong root, so every bridge whose old
        # root differed from itself detects the mismatch and falls back.
        states = [control.state for control in _controls(ring)]
        assert states.count("fallen-back") >= 2
        # The fallen-back bridges restart the old protocol; once its hellos
        # reappear, the remaining bridge detects old-protocol traffic after
        # the transition window and falls back too ("a failure has occurred
        # elsewhere in the network").
        sim.run_until(sim.now + 80.0)
        for control in _controls(ring):
            assert control.state == "fallen-back"
        for bridge in ring.bridges:
            assert bridge.func.lookup("stp.dec").running
            assert not bridge.func.lookup("stp.ieee").running

    def test_fallback_restores_forwarding(self):
        ring, injector = _ring(n_bridges=2, buggy=True)
        sim = ring.network.sim
        sim.run_until(35.0)
        sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
        sim.run_until(sim.now + 60.0)
        # After fallback and the old protocol's forward delay, data flows
        # again: verify via the learning bridge's filter (DEC forwarding).
        for bridge in ring.bridges:
            dec = bridge.func.lookup("stp.dec")
            assert set(dec.snapshot()["port_states"].values()) <= {"forwarding"}

    def test_late_old_protocol_packet_triggers_fallback(self):
        ring, injector = _ring(n_bridges=1, suppression=2.0, validation=4.0)
        sim = ring.network.sim
        sim.run_until(35.0)
        sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
        # Inject a stray DEC PDU after the suppression window but before the
        # tests complete -- "a failure has occurred elsewhere in the network".
        sim.schedule(3.0, lambda: injector.send(_dec_frame()))
        sim.run_until(sim.now + 20.0)
        control = _controls(ring)[0]
        assert control.state == control.STATE_FALLEN_BACK
        assert ring.bridges[0].func.lookup("stp.dec").running

    def test_old_packet_during_suppression_window_is_suppressed(self):
        ring, injector = _ring(n_bridges=1, suppression=5.0, validation=8.0)
        sim = ring.network.sim
        sim.run_until(35.0)
        sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
        sim.schedule(2.0, lambda: injector.send(_dec_frame()))  # inside the window
        sim.run_until(sim.now + 20.0)
        control = _controls(ring)[0]
        assert control.old_packets_suppressed >= 1
        assert control.state == control.STATE_TERMINATED

    def test_fallback_is_stable_against_further_ieee_packets(self):
        ring, injector = _ring(n_bridges=1, suppression=2.0, validation=4.0)
        sim = ring.network.sim
        sim.run_until(35.0)
        sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
        # A stray old-protocol packet after the suppression window forces the
        # fallback whose stability we want to check.
        sim.schedule(3.0, lambda: injector.send(_dec_frame()))
        sim.run_until(sim.now + 10.0)
        control = _controls(ring)[0]
        assert control.state == control.STATE_FALLEN_BACK
        suppressed_before = control.new_packets_suppressed
        sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
        sim.run_until(sim.now + 5.0)
        # No new transition: the network is stable until human intervention.
        assert control.state == control.STATE_FALLEN_BACK
        assert control.new_packets_suppressed > suppressed_before
        assert not ring.bridges[0].func.lookup("stp.ieee").running


class TestValidationFunction:
    def _snapshot(self, **overrides):
        snapshot = {
            "root_mac": "02:00:00:00:00:01",
            "root_port": "eth0",
            "port_roles": {"eth0": "root", "eth1": "designated"},
        }
        snapshot.update(overrides)
        return snapshot

    def test_identical_snapshots_pass(self):
        from repro.switchlets.control import ControlApp

        passed, reason = ControlApp.validate(self._snapshot(), self._snapshot())
        assert passed
        assert "match" in reason

    def test_root_mismatch_fails(self):
        from repro.switchlets.control import ControlApp

        passed, reason = ControlApp.validate(
            self._snapshot(), self._snapshot(root_mac="02:00:00:00:00:99")
        )
        assert not passed
        assert "root bridge" in reason

    def test_root_port_mismatch_fails(self):
        from repro.switchlets.control import ControlApp

        passed, _ = ControlApp.validate(self._snapshot(), self._snapshot(root_port="eth1"))
        assert not passed

    def test_role_mismatch_fails(self):
        from repro.switchlets.control import ControlApp

        passed, _ = ControlApp.validate(
            self._snapshot(),
            self._snapshot(port_roles={"eth0": "root", "eth1": "blocked"}),
        )
        assert not passed

    def test_missing_state_fails(self):
        from repro.switchlets.control import ControlApp

        passed, _ = ControlApp.validate(None, self._snapshot())
        assert not passed
