"""Tests for the active node, the network loading path, and in-band capsules."""

from __future__ import annotations

import pytest

from repro.core.capsule import CapsuleReceiver, decode_capsule, encode_capsule
from repro.core.netloader import NetworkLoader
from repro.core.node import ActiveNode
from repro.core.switchlet import SwitchletPackage
from repro.costs.model import CostModel
from repro.ethernet.frame import EthernetFrame
from repro.exceptions import PacketError, TopologyError
from repro.lan.segment import Segment
from repro.lan.topology import NetworkBuilder
from repro.netstack.ip import IPv4Address
from repro.netstack.tftp import BLOCK_SIZE, TFTP_PORT, TftpClient
from tests.conftest import load_standard_bridge


# ---------------------------------------------------------------------------
# ActiveNode basics
# ---------------------------------------------------------------------------


class TestActiveNode:
    def test_interfaces_registered_with_unixnet(self, sim):
        node = ActiveNode(sim, "n")
        node.add_interface("eth0", Segment(sim, "a"))
        node.add_interface("eth1", Segment(sim, "b"))
        assert node.unixnet.interface_names() == ["eth0", "eth1"]
        assert node.interface("eth0").mac == node.unixnet.interface_mac("eth0")

    def test_duplicate_interface_rejected(self, sim):
        node = ActiveNode(sim, "n")
        segment = Segment(sim, "a")
        node.add_interface("eth0", segment)
        with pytest.raises(TopologyError):
            node.add_interface("eth0", segment)
        with pytest.raises(TopologyError):
            node.interface("eth7")

    def test_unprogrammed_node_drops_frames(self, two_lan_bridge):
        env = two_lan_bridge
        # A broadcast frame reaches the (non-promiscuous) unprogrammed node,
        # but with no switchlet loaded nothing claims or forwards it.
        from repro.ethernet.frame import EthernetFrame
        from repro.ethernet.mac import BROADCAST

        frame = EthernetFrame(
            destination=BROADCAST,
            source=env["host1"].mac,
            ethertype=0x88B6,
            payload=b"x" * 64,
        )
        env["host1"].send_raw_frame(frame)
        env["sim"].run_until(1.0)
        bridge = env["bridge"]
        assert bridge.frames_received > 0
        assert bridge.frames_unclaimed > 0
        assert bridge.frames_claimed == 0
        assert bridge.frames_transmitted == 0

    def test_programmed_node_forwards(self, programmed_bridge):
        env = programmed_bridge
        replies = []
        env["host1"].stack.add_icmp_handler(lambda m, s: replies.append(m.is_reply))
        env["host1"].ping(env["host2"].ip, 1, 1, b"x" * 64)
        env["sim"].run_until(1.0)
        assert True in replies
        assert env["bridge"].frames_transmitted > 0

    def test_forwarding_latency_reflects_cost_model(self):
        results = {}
        for label, model in (
            ("cheap", CostModel(interpreter_frame_cost=1e-6, interpreter_byte_cost=0.0,
                                kernel_crossing_cost=1e-6)),
            ("expensive", CostModel(interpreter_frame_cost=5e-3, interpreter_byte_cost=0.0,
                                    kernel_crossing_cost=1e-3)),
        ):
            builder = NetworkBuilder(seed=3, cost_model=model)
            builder.add_segment("lan1")
            builder.add_segment("lan2")
            host1 = builder.add_host("h1", "lan1")
            host2 = builder.add_host("h2", "lan2")
            builder.populate_static_arp()
            network = builder.build()
            bridge = ActiveNode(network.sim, "bridge", cost_model=model)
            bridge.add_interface("eth0", network.segment("lan1"))
            bridge.add_interface("eth1", network.segment("lan2"))
            load_standard_bridge(bridge)
            rtts = []
            host1.stack.add_icmp_handler(lambda m, s, sim=network.sim: rtts.append(sim.now))
            host1.ping(host2.ip, 1, 1, b"x" * 64)
            network.sim.run_until(2.0)
            results[label] = rtts[0]
        assert results["expensive"] > results["cheap"]

    def test_statistics_structure(self, programmed_bridge):
        stats = programmed_bridge["bridge"].statistics()
        assert stats["switchlets_loaded"] == 2
        assert "eth0" in stats["interfaces"]

    def test_gc_pauses_traced_when_enabled(self, sim):
        model = CostModel().with_gc_pauses(interval=0.5, duration=1e-3)
        node = ActiveNode(sim, "gc-node", cost_model=model)
        node.add_interface("eth0", Segment(sim, "a"))
        sim.run_until(2.0)
        assert sim.trace.count(category="node.gc_pause", source="gc-node") >= 3

    def test_load_charges_cpu_time(self, sim):
        node = ActiveNode(sim, "n")
        node.add_interface("eth0", Segment(sim, "a"))
        package = SwitchletPackage.build("p", "x = 1", node.environment.modules)
        node.load_switchlet(package)
        sim.run()
        assert node.cpu.busy_time >= node.costs.load_cost() * 0.99


# ---------------------------------------------------------------------------
# Network loading path (Section 5.2)
# ---------------------------------------------------------------------------


def _loader_setup():
    """A host and an unprogrammed node on one LAN, with a NetworkLoader installed."""
    builder = NetworkBuilder(seed=11)
    builder.add_segment("lan1")
    host = builder.add_host("admin", "lan1")
    network = builder.build()
    node = ActiveNode(network.sim, "target")
    node.add_interface("eth0", network.segment("lan1"))
    node_ip = IPv4Address.from_string("10.0.0.200")
    loader = NetworkLoader(node, node_ip, interface="eth0")
    host.stack.add_static_arp(node_ip, node.interface("eth0").mac)
    return network, host, node, loader, node_ip


class TestNetworkLoader:
    def test_switchlet_loaded_over_tftp(self):
        network, host, node, loader, node_ip = _loader_setup()
        package = SwitchletPackage.build(
            "remote-switchlet",
            "Func.register('remotely-installed', lambda: 'it works')",
            node.environment.modules,
        )
        payload = package.to_bytes()
        assert len(payload) > BLOCK_SIZE  # exercises multi-block transfers

        outcome = []
        client = TftpClient(
            send=lambda data, remote: host.send_udp(node_ip, TFTP_PORT, 4000, data),
            filename="remote-switchlet.bin",
            data=payload,
            remote=(node_ip, TFTP_PORT),
            on_complete=outcome.append,
        )
        host.bind_udp(4000, lambda data, remote: client.handle_datagram(data, remote))
        network.sim.schedule(0.1, client.start)
        network.sim.run_until(5.0)

        assert outcome == [True]
        assert loader.switchlets_loaded == 1
        assert node.loader.is_loaded("remote-switchlet")
        assert node.func.call("remotely-installed") == "it works"

    def test_malformed_file_rejected_without_crashing(self):
        network, host, node, loader, node_ip = _loader_setup()
        outcome = []
        client = TftpClient(
            send=lambda data, remote: host.send_udp(node_ip, TFTP_PORT, 4001, data),
            filename="garbage.bin",
            data=b"this is not a switchlet package",
            remote=(node_ip, TFTP_PORT),
            on_complete=outcome.append,
        )
        host.bind_udp(4001, lambda data, remote: client.handle_datagram(data, remote))
        network.sim.schedule(0.1, client.start)
        network.sim.run_until(5.0)
        assert outcome == [True]  # the transfer succeeds ...
        assert loader.switchlets_loaded == 0  # ... but nothing is loaded
        assert loader.load_failures == 1
        assert loader.last_error is not None

    def test_loader_answers_ping(self):
        network, host, node, loader, node_ip = _loader_setup()
        replies = []
        host.stack.add_icmp_handler(lambda m, s: replies.append((m.is_reply, str(s))))
        host.ping(node_ip, 5, 1, b"are you there?")
        network.sim.run_until(1.0)
        assert (True, str(node_ip)) in replies


# ---------------------------------------------------------------------------
# In-band capsules
# ---------------------------------------------------------------------------


class TestCapsules:
    def test_encode_decode_roundtrip(self, sim):
        node = ActiveNode(sim, "n")
        node.add_interface("eth0", Segment(sim, "a"))
        package = SwitchletPackage.build("capsule-me", "x = 1", node.environment.modules)
        frame = encode_capsule(package, node.interface("eth0").mac)
        assert decode_capsule(frame) == package

    def test_decode_rejects_non_capsule(self, sim):
        node = ActiveNode(sim, "n")
        node.add_interface("eth0", Segment(sim, "a"))
        package = SwitchletPackage.build("c", "x = 1", node.environment.modules)
        frame = encode_capsule(package, node.interface("eth0").mac)
        not_a_capsule = EthernetFrame(
            destination=frame.destination,
            source=frame.source,
            ethertype=0x0800,
            payload=frame.payload,
        )
        with pytest.raises(PacketError):
            decode_capsule(not_a_capsule)

    def test_oversized_capsule_rejected(self, sim):
        node = ActiveNode(sim, "n")
        node.add_interface("eth0", Segment(sim, "a"))
        package = SwitchletPackage.build("big", "x = 1\n" * 2000, node.environment.modules)
        with pytest.raises(PacketError):
            encode_capsule(package, node.interface("eth0").mac)

    def test_capsule_loads_on_every_listening_node(self):
        builder = NetworkBuilder(seed=13)
        builder.add_segment("lan1")
        admin = builder.add_host("admin", "lan1")
        network = builder.build()
        nodes = []
        receivers = []
        for index in range(2):
            node = ActiveNode(network.sim, f"node{index}")
            node.add_interface("eth0", network.segment("lan1"))
            receivers.append(CapsuleReceiver(node))
            nodes.append(node)
        package = SwitchletPackage.build(
            "flooded", "Func.register('flooded', True)", nodes[0].environment.modules
        )
        frame = encode_capsule(package, admin.mac)
        network.sim.schedule(0.1, lambda: admin.send_raw_frame(frame))
        network.sim.run_until(1.0)
        for node, receiver in zip(nodes, receivers):
            assert receiver.capsules_loaded == 1
            assert node.func.registered("flooded")

    def test_bad_capsule_counted_rejected(self, sim):
        node = ActiveNode(sim, "n")
        segment = Segment(sim, "a")
        node.add_interface("eth0", segment)
        receiver = CapsuleReceiver(node)
        package = SwitchletPackage.build("tampered", "x = 1", node.environment.modules)
        tampered = package.with_tampered_source("Func.register('evil', True)")
        frame = encode_capsule(tampered, node.interface("eth0").mac)
        # Deliver directly through unixnet (no second station on the segment).
        node.unixnet.deliver_frame("eth0", frame)
        assert receiver.capsules_rejected == 1
        assert not node.func.registered("evil")
