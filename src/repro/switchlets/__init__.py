"""The bridge switchlets.

These are the loadable modules of Section 5.3 and 5.4 of the paper:

* :mod:`~repro.switchlets.dumb_bridge` — the minimal "dumb" bridge
  (a programmable buffered repeater),
* :mod:`~repro.switchlets.learning_bridge` — adds self-learning,
* :mod:`~repro.switchlets.spanning_tree` — the IEEE 802.1D spanning tree,
* :mod:`~repro.switchlets.dec_spanning_tree` — the DEC-style ("old")
  spanning tree used as the transition source,
* :mod:`~repro.switchlets.control` — the protocol-transition control
  switchlet of Section 5.4 / Table 1.

Each module contains the protocol logic as ordinary, unit-testable Python
classes that are written *dependency-light*: they use only safe builtins and
the thinned environment modules handed to their constructors.  The
:mod:`~repro.switchlets.packaging` module extracts their source with
``inspect.getsource`` and wraps it into
:class:`~repro.core.switchlet.SwitchletPackage` objects, which is how the
same code is genuinely shipped to and dynamically loaded by an active node.
"""

from repro.switchlets.framefmt import FrameFmt
from repro.switchlets.bpdu import ConfigBpdu, DecBpdu
from repro.switchlets.dumb_bridge import DumbBridgeApp
from repro.switchlets.learning_bridge import LearningBridgeApp, LearningTable
from repro.switchlets.spanning_tree import SpanningTreeApp
from repro.switchlets.dec_spanning_tree import DecSpanningTreeApp
from repro.switchlets.control import ControlApp
from repro.switchlets.vlan_bridge import VlanLearningBridgeApp
from repro.switchlets.packaging import (
    build_package,
    dumb_bridge_package,
    learning_bridge_package,
    vlan_bridge_package,
    spanning_tree_package,
    dec_spanning_tree_package,
    control_package,
    standard_bridge_packages,
)

__all__ = [
    "FrameFmt",
    "ConfigBpdu",
    "DecBpdu",
    "DumbBridgeApp",
    "LearningBridgeApp",
    "LearningTable",
    "VlanLearningBridgeApp",
    "SpanningTreeApp",
    "DecSpanningTreeApp",
    "ControlApp",
    "build_package",
    "dumb_bridge_package",
    "learning_bridge_package",
    "vlan_bridge_package",
    "spanning_tree_package",
    "dec_spanning_tree_package",
    "control_package",
    "standard_bridge_packages",
]
