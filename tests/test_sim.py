"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SchedulingError, SimulationError
from repro.sim.clock import Clock, ns_to_seconds, seconds_to_ns
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue, describe_event
from repro.sim.process import Process
from repro.sim.random_source import RandomSource
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import TraceRecorder


# ---------------------------------------------------------------------------
# Clock
# ---------------------------------------------------------------------------


class TestClock:
    def test_starts_at_zero(self):
        clock = Clock()
        assert clock.now == 0.0
        assert clock.now_ns == 0

    def test_advance(self):
        clock = Clock()
        clock.advance_to_ns(5_000_000_000)
        assert clock.now == pytest.approx(5.0)

    def test_cannot_run_backwards(self):
        clock = Clock()
        clock.advance_to_ns(100)
        with pytest.raises(ValueError):
            clock.advance_to_ns(50)

    def test_reset(self):
        clock = Clock()
        clock.advance_to_ns(100)
        clock.reset()
        assert clock.now_ns == 0

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_conversion_roundtrip_close(self, seconds):
        assert ns_to_seconds(seconds_to_ns(seconds)) == pytest.approx(seconds, abs=1e-9)


# ---------------------------------------------------------------------------
# Event queue
# ---------------------------------------------------------------------------


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(300, lambda: fired.append(3))
        queue.push(100, lambda: fired.append(1))
        queue.push(200, lambda: fired.append(2))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert fired == [1, 2, 3]

    def test_ties_preserve_scheduling_order(self):
        queue = EventQueue()
        order = []
        for index in range(5):
            queue.push(100, lambda i=index: order.append(i))
        while queue:
            queue.pop().callback()
        assert order == [0, 1, 2, 3, 4]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(10, lambda: None, label="victim")
        queue.push(20, lambda: None)
        event.cancel()
        assert len(queue) == 1
        popped = queue.pop()
        assert popped.time_ns == 20

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(10, lambda: None)
        queue.push(20, lambda: None)
        first.cancel()
        assert queue.peek_time_ns() == 20

    def test_validate_schedule_time(self):
        queue = EventQueue()
        with pytest.raises(SchedulingError):
            queue.validate_schedule_time(now_ns=100, when_ns=50)

    def test_describe_event(self):
        queue = EventQueue()
        event = queue.push(10, lambda: None, label="x")
        description = describe_event(event)
        assert description["label"] == "x"
        assert description["time_ns"] == 10

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_always_pop_sorted(self, times):
        queue = EventQueue()
        for when in times:
            queue.push(when, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop().time_ns)
        assert popped == sorted(times)


# ---------------------------------------------------------------------------
# Simulator
# ---------------------------------------------------------------------------


class TestSimulator:
    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.schedule(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.run_until(2.0)
        assert fired == ["a"]
        assert sim.now == pytest.approx(2.0)
        assert sim.pending_events == 1

    def test_run_until_advances_clock_when_idle(self, sim):
        sim.run_until(3.0)
        assert sim.now == pytest.approx(3.0)

    def test_run_until_cannot_go_backwards(self, sim):
        sim.run_until(3.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_call_soon_runs_at_current_time(self, sim):
        times = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [pytest.approx(1.0)]

    def test_events_scheduled_during_run_are_executed(self, sim):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.schedule(0.5, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]

    def test_run_for(self, sim):
        sim.run_until(1.0)
        sim.run_for(2.0)
        assert sim.now == pytest.approx(3.0)

    def test_max_events(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        dispatched = sim.run(max_events=4)
        assert dispatched == 4
        assert sim.pending_events == 6

    def test_reset(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.events_dispatched == 0

    def test_determinism_same_seed(self):
        def run_once():
            simulator = Simulator(seed=99)
            values = []
            for _ in range(10):
                simulator.schedule(
                    simulator.random.uniform(0, 1), lambda: values.append(simulator.now)
                )
            simulator.run()
            return values

        assert run_once() == run_once()


# ---------------------------------------------------------------------------
# Timers
# ---------------------------------------------------------------------------


class TestTimers:
    def test_one_shot_timer_fires(self, sim):
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        assert fired == [pytest.approx(2.0)]
        assert timer.expiry_count == 1

    def test_timer_restart_cancels_previous(self, sim):
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run_until(1.0)
        timer.start()  # restart at t=1, so it fires at t=3
        sim.run()
        assert fired == [pytest.approx(3.0)]

    def test_timer_stop(self, sim):
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(True))
        timer.start()
        timer.stop()
        sim.run()
        assert fired == []
        assert not timer.running

    def test_timer_custom_duration(self, sim):
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start(duration=0.5)
        sim.run()
        assert fired == [pytest.approx(0.5)]

    def test_periodic_timer(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run_until(3.5)
        timer.stop()
        sim.run_until(10.0)
        assert fired == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]
        assert timer.fire_count == 3

    def test_periodic_timer_fire_immediately(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start(fire_immediately=True)
        sim.run_until(2.5)
        timer.stop()
        assert fired[0] == pytest.approx(0.0)
        assert len(fired) == 3


# ---------------------------------------------------------------------------
# Process
# ---------------------------------------------------------------------------


class TestProcess:
    def test_process_sleeps_between_steps(self, sim):
        steps = []

        def body():
            for _ in range(3):
                steps.append(sim.now)
                yield 1.0

        process = Process(sim, body())
        process.start()
        sim.run()
        assert steps == [pytest.approx(0.0), pytest.approx(1.0), pytest.approx(2.0)]
        assert process.finished

    def test_on_complete_callback(self, sim):
        done = []

        def body():
            yield 0.5

        process = Process(sim, body(), on_complete=lambda: done.append(sim.now))
        process.start()
        sim.run()
        assert done == [pytest.approx(0.5)]

    def test_start_is_idempotent(self, sim):
        count = []

        def body():
            count.append(1)
            yield 0.1

        process = Process(sim, body())
        process.start()
        process.start()
        sim.run()
        assert sum(count) == 1


# ---------------------------------------------------------------------------
# RandomSource
# ---------------------------------------------------------------------------


class TestRandomSource:
    def test_same_seed_same_sequence(self):
        a = RandomSource(5)
        b = RandomSource(5)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_payload_length(self):
        source = RandomSource(1)
        assert len(source.payload(100)) == 100
        assert source.payload(0) == b""

    def test_jitter_bounds(self):
        source = RandomSource(2)
        for _ in range(100):
            value = source.jitter(10.0, fraction=0.1)
            assert 9.0 <= value <= 11.0

    def test_reseed(self):
        source = RandomSource(3)
        first = source.randint(0, 1000)
        source.reseed(3)
        assert source.randint(0, 1000) == first


# ---------------------------------------------------------------------------
# Trace
# ---------------------------------------------------------------------------


class TestTrace:
    def test_records_are_timestamped(self, sim):
        sim.schedule(1.5, lambda: sim.trace.record("unit", "tick"))
        sim.run()
        records = sim.trace.filter(category="tick")
        assert len(records) == 1
        assert records[0].time == pytest.approx(1.5)

    def test_filtering(self, sim):
        sim.trace.record("a", "x", value=1)
        sim.trace.record("b", "x", value=2)
        sim.trace.record("a", "y", value=3)
        assert sim.trace.count(category="x") == 2
        assert sim.trace.count(source="a") == 2
        assert len(sim.trace.filter(category="x", source="a")) == 1

    def test_disable_enable(self, sim):
        sim.trace.disable()
        sim.trace.record("a", "x")
        sim.trace.enable()
        sim.trace.record("a", "x")
        assert sim.trace.count(category="x") == 1

    def test_listener(self, sim):
        seen = []
        sim.trace.add_listener(lambda record: seen.append(record.category))
        sim.trace.record("a", "hello")
        assert seen == ["hello"]

    def test_last(self, sim):
        sim.trace.record("a", "x", value=1)
        sim.trace.record("a", "x", value=2)
        assert sim.trace.last(category="x").detail["value"] == 2
        assert sim.trace.last(category="missing") is None

    def test_time_window_filter(self, sim):
        recorder: TraceRecorder = sim.trace
        sim.schedule(1.0, lambda: recorder.record("a", "x"))
        sim.schedule(2.0, lambda: recorder.record("a", "x"))
        sim.schedule(3.0, lambda: recorder.record("a", "x"))
        sim.run()
        assert len(recorder.filter(category="x", since=1.5, until=2.5)) == 1
