"""Topology as data: the scenario interchange format.

A :class:`~repro.scenario.spec.ScenarioSpec` is already pure data; this
module gives it a *lossless* serialized form so topologies can live in
files, travel between tools and come back bit-identical:

* :func:`spec_to_dict` / :func:`dict_to_spec` — every spec field (segments,
  hosts, devices, ports, switchlets, faults, params) as plain mappings,
  lists and scalars, and back.
* :func:`partition_to_dict` / :func:`dict_to_partition` — the engine-side
  :class:`~repro.scenario.spec.PartitionSpec` (shards, sync, workers,
  backend, explicit assignments).
* :func:`dump_scenario` / :func:`load_scenario` — a complete *scenario
  document* (spec + optional partition + optional free-form ``run`` block)
  as YAML or JSON text, plus :func:`save_scenario` / :func:`load_scenario_file`
  for paths.

The format is versioned (:data:`SCHEMA`) and **strict**: an unknown key at
any level, a missing required key, or a wrong collection shape raises
:class:`InterchangeError` naming the offending location — a typo in a
hand-written topology file fails loudly instead of silently compiling a
different network.  The round-trip contract is exact equality::

    spec == dict_to_spec(spec_to_dict(spec))
    spec == load_scenario(dump_scenario(spec)).spec

and, because compilation is a pure function of the spec, a run driven from
the round-tripped spec is bit-identical to one driven from the original —
the property the scenario fuzzer (``tools/fuzz_scenarios.py``) checks on
every generated topology, and the format the fuzzer's shrunk reproducers
are committed in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence, Tuple, Union

try:  # YAML is the preferred wire format but JSON works without it.
    import yaml
except ImportError:  # pragma: no cover - exercised only on yaml-less installs
    yaml = None

from repro.exceptions import ReproError
from repro.faults.spec import FaultSpec
from repro.scenario.spec import (
    DeviceSpec,
    HostSpec,
    PartitionSpec,
    PortSpec,
    ScenarioSpec,
    SegmentSpec,
    SwitchletSpec,
)

#: The interchange schema identifier; bump on any incompatible change.
SCHEMA = "repro/scenario/v1"


class InterchangeError(ReproError):
    """Malformed interchange document (unknown key, bad shape, bad version)."""


# ---------------------------------------------------------------------------
# Spec -> data
# ---------------------------------------------------------------------------


def _segment_to_dict(segment: SegmentSpec) -> dict:
    return {
        "name": segment.name,
        "bandwidth_bps": segment.bandwidth_bps,
        "propagation_delay": segment.propagation_delay,
    }


def _host_to_dict(host: HostSpec) -> dict:
    return {
        "name": host.name,
        "segment": host.segment,
        "ip": host.ip,
        "vlan": host.vlan,
    }


def _port_to_dict(port: PortSpec) -> dict:
    return {
        "name": port.name,
        "segment": port.segment,
        "mode": port.mode,
        "vlan": port.vlan,
        "allowed_vlans": (
            None if port.allowed_vlans is None else list(port.allowed_vlans)
        ),
        "native_vlan": port.native_vlan,
    }


def _switchlet_to_dict(switchlet: SwitchletSpec) -> dict:
    return {"name": switchlet.name, "params": dict(switchlet.params)}


def _device_to_dict(device: DeviceSpec) -> dict:
    return {
        "name": device.name,
        "kind": device.kind,
        "ports": [_port_to_dict(port) for port in device.ports],
        "switchlets": [_switchlet_to_dict(s) for s in device.switchlets],
    }


def _fault_to_dict(fault: FaultSpec) -> dict:
    return {
        "kind": fault.kind,
        "at": fault.at,
        "target": fault.target,
        "port": fault.port,
        "rate": fault.rate,
        "corrupt_rate": fault.corrupt_rate,
        "bandwidth_scale": fault.bandwidth_scale,
        "extra_delay": fault.extra_delay,
        "seed": fault.seed,
    }


def spec_to_dict(spec: ScenarioSpec) -> dict:
    """Render a spec as plain data (mappings, lists, scalars) — losslessly.

    Every field is emitted explicitly, defaults included, so the output is a
    complete self-describing record of the topology; :func:`dict_to_spec`
    inverts it exactly.
    """
    return {
        "name": spec.name,
        "description": spec.description,
        "label": spec.label,
        "segments": [_segment_to_dict(s) for s in spec.segments],
        "hosts": [_host_to_dict(h) for h in spec.hosts],
        "devices": [_device_to_dict(d) for d in spec.devices],
        "static_arp": spec.static_arp,
        "ready_time": spec.ready_time,
        "faults": [_fault_to_dict(f) for f in spec.faults],
        "params": dict(spec.params),
    }


def partition_to_dict(partition: PartitionSpec) -> dict:
    """Render a partition spec as plain data — losslessly."""
    return {
        "shards": partition.shards,
        "assignments": dict(partition.assignments),
        "sync": partition.sync,
        "workers": partition.workers,
        "backend": partition.backend,
    }


# ---------------------------------------------------------------------------
# Data -> spec (strict)
# ---------------------------------------------------------------------------


def _require_mapping(value: object, where: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise InterchangeError(
            f"{where}: expected a mapping, got {type(value).__name__}"
        )
    return value


def _require_list(value: object, where: str) -> Sequence:
    if value is None:
        return ()
    if isinstance(value, (str, bytes, Mapping)) or not isinstance(value, Sequence):
        raise InterchangeError(
            f"{where}: expected a list, got {type(value).__name__}"
        )
    return value


def _take(data: Mapping, where: str, required: Sequence[str], optional: Mapping):
    """Split ``data`` into field values, strictly.

    Every key must be either required (and present) or optional (absent keys
    take the given default); anything else raises naming the location and
    the full known-key list.
    """
    known = set(required) | set(optional)
    unknown = sorted(set(data) - known)
    if unknown:
        raise InterchangeError(
            f"{where}: unknown key(s) {unknown}; known keys: {sorted(known)}"
        )
    missing = sorted(set(required) - set(data))
    if missing:
        raise InterchangeError(f"{where}: missing required key(s) {missing}")
    values = dict(optional)
    values.update(data)
    return values


def _dict_to_segment(data: object, where: str) -> SegmentSpec:
    fields = _take(
        _require_mapping(data, where),
        where,
        required=("name",),
        optional={
            "bandwidth_bps": SegmentSpec.__dataclass_fields__[
                "bandwidth_bps"
            ].default,
            "propagation_delay": SegmentSpec.__dataclass_fields__[
                "propagation_delay"
            ].default,
        },
    )
    return SegmentSpec(
        name=fields["name"],
        bandwidth_bps=fields["bandwidth_bps"],
        propagation_delay=fields["propagation_delay"],
    )


def _dict_to_host(data: object, where: str) -> HostSpec:
    fields = _take(
        _require_mapping(data, where),
        where,
        required=("name", "segment"),
        optional={"ip": None, "vlan": None},
    )
    return HostSpec(
        name=fields["name"],
        segment=fields["segment"],
        ip=fields["ip"],
        vlan=fields["vlan"],
    )


def _dict_to_port(data: object, where: str) -> PortSpec:
    fields = _take(
        _require_mapping(data, where),
        where,
        required=("name", "segment"),
        optional={
            "mode": "access",
            "vlan": 1,
            "allowed_vlans": None,
            "native_vlan": None,
        },
    )
    allowed = fields["allowed_vlans"]
    if allowed is not None:
        allowed = tuple(_require_list(allowed, f"{where}.allowed_vlans"))
    return PortSpec(
        name=fields["name"],
        segment=fields["segment"],
        mode=fields["mode"],
        vlan=fields["vlan"],
        allowed_vlans=allowed,
        native_vlan=fields["native_vlan"],
    )


def _dict_to_switchlet(data: object, where: str) -> SwitchletSpec:
    fields = _take(
        _require_mapping(data, where),
        where,
        required=("name",),
        optional={"params": {}},
    )
    return SwitchletSpec(
        name=fields["name"],
        params=dict(_require_mapping(fields["params"], f"{where}.params")),
    )


def _dict_to_device(data: object, where: str) -> DeviceSpec:
    fields = _take(
        _require_mapping(data, where),
        where,
        required=("name",),
        optional={"kind": "active-node", "ports": (), "switchlets": ()},
    )
    ports = tuple(
        _dict_to_port(port, f"{where}.ports[{index}]")
        for index, port in enumerate(_require_list(fields["ports"], f"{where}.ports"))
    )
    switchlets = tuple(
        _dict_to_switchlet(item, f"{where}.switchlets[{index}]")
        for index, item in enumerate(
            _require_list(fields["switchlets"], f"{where}.switchlets")
        )
    )
    return DeviceSpec(
        name=fields["name"], kind=fields["kind"], ports=ports, switchlets=switchlets
    )


def _dict_to_fault(data: object, where: str) -> FaultSpec:
    fields = _take(
        _require_mapping(data, where),
        where,
        required=("kind", "at", "target"),
        optional={
            "port": None,
            "rate": 0.0,
            "corrupt_rate": 0.0,
            "bandwidth_scale": 1.0,
            "extra_delay": 0.0,
            "seed": 0,
        },
    )
    return FaultSpec(
        kind=fields["kind"],
        at=fields["at"],
        target=fields["target"],
        port=fields["port"],
        rate=fields["rate"],
        corrupt_rate=fields["corrupt_rate"],
        bandwidth_scale=fields["bandwidth_scale"],
        extra_delay=fields["extra_delay"],
        seed=fields["seed"],
    )


def dict_to_spec(data: object, where: str = "spec") -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from :func:`spec_to_dict` output.

    Strict: unknown keys anywhere in the tree raise :class:`InterchangeError`.
    The spec's own validation (duplicate names, dangling segment references,
    unknown kinds) runs as part of construction, so a structurally valid
    document with a semantically broken topology still fails loudly.
    """
    fields = _take(
        _require_mapping(data, where),
        where,
        required=("name",),
        optional={
            "description": "",
            "label": "",
            "segments": (),
            "hosts": (),
            "devices": (),
            "static_arp": True,
            "ready_time": ScenarioSpec.__dataclass_fields__["ready_time"].default,
            "faults": (),
            "params": {},
        },
    )
    try:
        return ScenarioSpec(
            name=fields["name"],
            description=fields["description"],
            label=fields["label"],
            segments=tuple(
                _dict_to_segment(item, f"{where}.segments[{index}]")
                for index, item in enumerate(
                    _require_list(fields["segments"], f"{where}.segments")
                )
            ),
            hosts=tuple(
                _dict_to_host(item, f"{where}.hosts[{index}]")
                for index, item in enumerate(
                    _require_list(fields["hosts"], f"{where}.hosts")
                )
            ),
            devices=tuple(
                _dict_to_device(item, f"{where}.devices[{index}]")
                for index, item in enumerate(
                    _require_list(fields["devices"], f"{where}.devices")
                )
            ),
            static_arp=fields["static_arp"],
            ready_time=fields["ready_time"],
            faults=tuple(
                _dict_to_fault(item, f"{where}.faults[{index}]")
                for index, item in enumerate(
                    _require_list(fields["faults"], f"{where}.faults")
                )
            ),
            params=dict(_require_mapping(fields["params"], f"{where}.params")),
        )
    except ReproError:
        raise
    except ValueError as exc:
        raise InterchangeError(f"{where}: invalid scenario: {exc}") from exc


def dict_to_partition(data: object, where: str = "partition") -> PartitionSpec:
    """Rebuild a :class:`PartitionSpec` from :func:`partition_to_dict` output."""
    fields = _take(
        _require_mapping(data, where),
        where,
        required=(),
        optional={
            "shards": 1,
            "assignments": {},
            "sync": "strict",
            "workers": 0,
            "backend": "thread",
        },
    )
    try:
        return PartitionSpec(
            shards=fields["shards"],
            assignments=dict(
                _require_mapping(fields["assignments"], f"{where}.assignments")
            ),
            sync=fields["sync"],
            workers=fields["workers"],
            backend=fields["backend"],
        )
    except ValueError as exc:
        raise InterchangeError(f"{where}: invalid partition: {exc}") from exc


# ---------------------------------------------------------------------------
# Scenario documents (spec + partition + run block) as YAML/JSON text
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioDocument:
    """One loaded interchange document.

    Attributes:
        spec: the topology.
        partition: the engine configuration the document pins (``None`` when
            the document leaves engine choice to the caller).
        run: free-form scalar metadata about how to drive the run — the
            fuzzer records ``seed``, ``duration``, the failing oracle mode
            and the case id here.  Unvalidated beyond being a mapping.
    """

    spec: ScenarioSpec
    partition: Optional[PartitionSpec] = None
    run: Mapping[str, object] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.run is None:
            object.__setattr__(self, "run", {})


def document_to_dict(
    spec: ScenarioSpec,
    partition: Optional[PartitionSpec] = None,
    run: Optional[Mapping[str, object]] = None,
) -> dict:
    """The complete document form: schema stamp, spec, optional extras."""
    document: dict = {"schema": SCHEMA, "spec": spec_to_dict(spec)}
    if partition is not None:
        document["partition"] = partition_to_dict(partition)
    if run:
        document["run"] = dict(run)
    return document


def dict_to_document(data: object) -> ScenarioDocument:
    """Parse (strictly) a document produced by :func:`document_to_dict`."""
    fields = _take(
        _require_mapping(data, "document"),
        "document",
        required=("schema", "spec"),
        optional={"partition": None, "run": {}},
    )
    if fields["schema"] != SCHEMA:
        raise InterchangeError(
            f"document: unsupported schema {fields['schema']!r}; "
            f"this build reads {SCHEMA!r}"
        )
    partition = fields["partition"]
    return ScenarioDocument(
        spec=dict_to_spec(fields["spec"]),
        partition=None if partition is None else dict_to_partition(partition),
        run=dict(_require_mapping(fields["run"], "document.run")),
    )


def dump_scenario(
    spec: ScenarioSpec,
    partition: Optional[PartitionSpec] = None,
    run: Optional[Mapping[str, object]] = None,
    fmt: str = "yaml",
) -> str:
    """Serialize a scenario document as YAML (default) or JSON text."""
    document = document_to_dict(spec, partition=partition, run=run)
    if fmt == "yaml":
        if yaml is None:
            raise InterchangeError(
                "PyYAML is not installed; use fmt='json' or install pyyaml"
            )
        return yaml.safe_dump(document, sort_keys=False, default_flow_style=False)
    if fmt == "json":
        return json.dumps(document, indent=2) + "\n"
    raise InterchangeError(f"unknown interchange format {fmt!r}; use 'yaml' or 'json'")


def load_scenario(text: str, fmt: str = "yaml") -> ScenarioDocument:
    """Parse scenario-document text (YAML or JSON) strictly."""
    if fmt == "yaml":
        if yaml is None:
            raise InterchangeError(
                "PyYAML is not installed; use fmt='json' or install pyyaml"
            )
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise InterchangeError(f"document: invalid YAML: {exc}") from exc
    elif fmt == "json":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise InterchangeError(f"document: invalid JSON: {exc}") from exc
    else:
        raise InterchangeError(
            f"unknown interchange format {fmt!r}; use 'yaml' or 'json'"
        )
    return dict_to_document(data)


def _format_for(path: Path) -> str:
    if path.suffix.lower() == ".json":
        return "json"
    if path.suffix.lower() in (".yaml", ".yml"):
        return "yaml"
    raise InterchangeError(
        f"cannot infer interchange format from {path.name!r}; "
        "use a .yaml/.yml or .json extension"
    )


def save_scenario(
    path: Union[str, Path],
    spec: ScenarioSpec,
    partition: Optional[PartitionSpec] = None,
    run: Optional[Mapping[str, object]] = None,
) -> Path:
    """Write a scenario document to ``path`` (format from the extension)."""
    path = Path(path)
    path.write_text(dump_scenario(spec, partition=partition, run=run,
                                  fmt=_format_for(path)))
    return path


def load_scenario_file(path: Union[str, Path]) -> ScenarioDocument:
    """Read a scenario document from ``path`` (format from the extension)."""
    path = Path(path)
    return load_scenario(path.read_text(), fmt=_format_for(path))
