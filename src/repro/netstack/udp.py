"""Minimal UDP, the third layer of the paper's network loading stack.

The paper's loader implements "a minimal UDP in a similar fashion" to its
minimal IP; the UDP port number is what demultiplexes packets to switchlets
(the TFTP loader listens on UDP port 69).  We implement the standard 8-byte
header with the optional checksum computed over the usual pseudo-header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.exceptions import ChecksumError, PacketError
from repro.netstack.checksum import internet_checksum
from repro.netstack.ip import IPv4Address, IpProtocol

UDP_HEADER_LENGTH = 8


def _pseudo_header(source: IPv4Address, destination: IPv4Address, udp_length: int) -> bytes:
    return (
        source.to_bytes()
        + destination.to_bytes()
        + struct.pack("!BBH", 0, int(IpProtocol.UDP), udp_length)
    )


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram.

    Attributes:
        source_port: 16-bit source port.
        destination_port: 16-bit destination port.
        payload: the payload bytes.
    """

    source_port: int
    destination_port: int
    payload: bytes = field(default=b"")

    def __post_init__(self) -> None:
        for port in (self.source_port, self.destination_port):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"UDP port out of range: {port}")

    @property
    def length(self) -> int:
        """Header plus payload length."""
        return UDP_HEADER_LENGTH + len(self.payload)

    def encode(self, source: IPv4Address, destination: IPv4Address) -> bytes:
        """Serialize with a checksum over the IPv4 pseudo-header.

        Args:
            source: the IP source address (needed for the pseudo-header).
            destination: the IP destination address.
        """
        if self.length > 0xFFFF:
            raise PacketError(f"UDP datagram too large: {self.length} bytes")
        header_no_checksum = struct.pack(
            "!HHHH", self.source_port, self.destination_port, self.length, 0
        )
        checksum = internet_checksum(
            _pseudo_header(source, destination, self.length)
            + header_no_checksum
            + self.payload
        )
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        header = struct.pack(
            "!HHHH", self.source_port, self.destination_port, self.length, checksum
        )
        return header + self.payload

    @classmethod
    def decode(
        cls,
        data: bytes,
        source: IPv4Address,
        destination: IPv4Address,
        verify: bool = True,
    ) -> "UdpDatagram":
        """Parse wire bytes, verifying the checksum unless it is zero (unused)."""
        if len(data) < UDP_HEADER_LENGTH:
            raise PacketError(f"UDP datagram too short: {len(data)} bytes")
        source_port, destination_port, length, checksum = struct.unpack(
            "!HHHH", data[:UDP_HEADER_LENGTH]
        )
        if length < UDP_HEADER_LENGTH or length > len(data):
            raise PacketError(
                f"UDP length {length} inconsistent with payload of {len(data)} bytes"
            )
        payload = data[UDP_HEADER_LENGTH:length]
        if verify and checksum != 0:
            computed = internet_checksum(
                _pseudo_header(source, destination, length) + data[:length]
            )
            if computed != 0:
                raise ChecksumError("UDP checksum mismatch")
        return cls(
            source_port=source_port,
            destination_port=destination_port,
            payload=payload,
        )
