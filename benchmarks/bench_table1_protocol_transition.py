"""Table 1 — automatic protocol transition.

Regenerates the paper's Table 1: the coordinated state sequence of the DEC
("old") protocol, the IEEE 802.1D ("new") protocol, and the control
switchlet during an automatic transition — plus the fallback row, which is
exercised in a second run with a deliberately faulty new protocol.
"""

from __future__ import annotations

from _harness import emit, run_once

from repro.analysis.tables import render_table
from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import ALL_BRIDGES_MULTICAST, MacAddress
from repro.lan.nic import NetworkInterface
from repro.scenario import run_scenario
from repro.switchlets.bpdu import ConfigBpdu

TRIGGER_MAC = MacAddress.from_string("02:aa:aa:aa:aa:aa")


def _trigger_frame():
    bpdu = ConfigBpdu(0xFFFF, TRIGGER_MAC.octets, 0, 0xFFFF, TRIGGER_MAC.octets, 1)
    return EthernetFrame(
        destination=ALL_BRIDGES_MULTICAST,
        source=TRIGGER_MAC,
        ethertype=int(EtherType.STP_8021D),
        payload=bpdu.encode(),
    )


def _run_transition(buggy: bool):
    """Run one transition on a 3-bridge chain; returns the bridges' controls."""
    ring = run_scenario(
        "ring", seed=4, params={"n_bridges": 3, "buggy_new_protocol": buggy}
    ).as_ring()
    sim = ring.network.sim
    injector = NetworkInterface(sim, "admin", TRIGGER_MAC)
    injector.attach(ring.left_segment)
    sim.run_until(40.0)  # the old protocol converges and forwards
    sim.schedule(0.1, lambda: injector.send(_trigger_frame()))
    sim.run_until(sim.now + 150.0)
    return [bridge.func.lookup("switchlet.control") for bridge in ring.bridges]


def measure():
    return {"normal": _run_transition(buggy=False), "faulty": _run_transition(buggy=True)}


def test_table1_protocol_transition(benchmark):
    outcome = run_once(benchmark, measure)

    # Render the paper's Table 1 from the first bridge's transition log.
    control = outcome["normal"][0]
    start = control.transition_log[0]["time"]
    rows = [
        [f"{entry['time'] - start:+.2f}s", entry["action"], entry["dec"], entry["ieee"], entry["control"]]
        for entry in control.transition_log
    ]
    emit(
        "Table 1 -- automatic protocol transition (successful run, bridge1)",
        render_table(["t", "action", "DEC", "IEEE", "control"], rows),
    )

    faulty = outcome["faulty"][0]
    rows = [
        [f"{entry['time'] - faulty.transition_log[0]['time']:+.2f}s",
         entry["action"], entry["dec"], entry["ieee"], entry["control"]]
        for entry in faulty.transition_log
    ]
    emit(
        "Table 1 -- fallback row (faulty new protocol, bridge1)",
        render_table(["t", "action", "DEC", "IEEE", "control"], rows),
    )

    # The successful run reproduces the paper's sequence on every bridge.
    for control in outcome["normal"]:
        actions = [entry["action"] for entry in control.transition_log]
        assert actions == [
            "load/start control",
            "recv IEEE packet",
            "start IEEE",
            "30 seconds",
            "60 seconds",
            "pass tests",
        ]
        assert control.state == control.STATE_TERMINATED
        # The 30 s / 60 s rows land at the paper's offsets from the trigger.
        trigger_time = control.transition_log[1]["time"]
        offsets = {
            entry["action"]: entry["time"] - trigger_time for entry in control.transition_log
        }
        assert abs(offsets["30 seconds"] - 30.0) < 0.5
        assert abs(offsets["60 seconds"] - 60.0) < 0.5

    # The faulty run ends with every bridge back on the old protocol.
    assert all(control.state == "fallen-back" for control in outcome["faulty"])
    assert any(
        "fallback" in entry["control"]
        for control in outcome["faulty"]
        for entry in control.transition_log
    )
