"""The switchlet loader.

"A central aspect of an active network is the ability to load executable code
into the network elements.  Thus, it is no surprise that a basic component of
our system is our switchlet loader, which allows the user to load in new
switchlets and to execute them.  Another important aspect of the loader is
that it establishes the environment in which switchlets execute."
(Section 5.1.)

:class:`SwitchletLoader` mirrors the Caml ``Dynlink`` flow the paper
describes in Section 5.1.2:

* ``Dynlink.init``                → constructing the loader (empty namespace),
* ``Dynlink.add_available_units`` → :meth:`add_available_units`, which makes
  the eight thinned environment modules nameable by loaded code,
* ``Dynlink.loadfile``            → :meth:`load` / :meth:`load_bytes`, which
  verify the package's interface digests, compile its source with restricted
  builtins, and execute its top-level forms — which, by convention, register
  functions through ``Func`` so previously linked code can reach them.

The loader never gives a switchlet access to the Python import system, the
file system, or the loader itself.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from functools import lru_cache

from repro.core.signature import digest_module, digest_source
from repro.core.switchlet import SwitchletPackage
from repro.core.thinning import safe_builtins
from repro.exceptions import LoadError, SignatureMismatch
from repro.sim.trace import TraceRecorder


@lru_cache(maxsize=256)
def _compile_switchlet(source: str, name: str):
    """Compile switchlet source to a code object (cached).

    Code objects are immutable and executed against a fresh namespace on
    every load, so nodes loading the same package (every bridge in a ring
    loads the same five switchlets) can share the compilation.
    """
    return compile(source, filename=f"<switchlet {name}>", mode="exec")


class LoadedSwitchlet:
    """Book-keeping record for a switchlet that has been linked into a node."""

    def __init__(self, package: SwitchletPackage, namespace: Dict[str, object], load_time: float) -> None:
        self.package = package
        self.namespace = namespace
        self.load_time = load_time

    @property
    def name(self) -> str:
        """The switchlet's name."""
        return self.package.name

    def __repr__(self) -> str:
        return f"<loaded switchlet {self.name!r} at t={self.load_time:.6f}s>"


class SwitchletLoader:
    """Loads switchlet packages into a thinned environment.

    Args:
        trace: optional trace recorder (the owning node passes its
            simulator's trace so loads show up in experiment timelines).
        source_name: name used in trace records (normally the node name).
    """

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        source_name: str = "loader",
    ) -> None:
        self._available_units: Dict[str, object] = {}
        self._loaded: List[LoadedSwitchlet] = []
        self._trace = trace
        self._source_name = source_name
        self.loads_attempted = 0
        self.loads_succeeded = 0
        self.loads_rejected = 0

    # ------------------------------------------------------------------
    # Environment management (Dynlink.add_available_units)
    # ------------------------------------------------------------------

    def add_available_units(self, modules: Mapping[str, object]) -> None:
        """Make ``modules`` (name -> thinned module) nameable by loaded code."""
        for name, module in modules.items():
            self._available_units[name] = module

    def available_units(self) -> list:
        """Names of the modules currently available to switchlets."""
        return sorted(self._available_units)

    def environment_digest(self, module_name: str) -> str:
        """Interface digest of one available module."""
        try:
            module = self._available_units[module_name]
        except KeyError as exc:
            raise LoadError(f"no available unit named {module_name!r}") from exc
        return digest_module(module)

    # ------------------------------------------------------------------
    # Loading (Dynlink.loadfile)
    # ------------------------------------------------------------------

    def load(self, package: SwitchletPackage) -> LoadedSwitchlet:
        """Verify, compile and execute a switchlet package.

        Raises:
            SignatureMismatch: if the source digest or any required interface
                digest does not match — the link-time failure of Section
                5.1.1.
            LoadError: if the source does not compile or its top-level forms
                raise.
        """
        self.loads_attempted += 1
        self._check_integrity(package)
        self._check_interfaces(package)
        namespace = self._build_namespace()
        try:
            code = _compile_switchlet(package.source, package.name)
        except SyntaxError as exc:
            self.loads_rejected += 1
            raise LoadError(f"switchlet {package.name!r} failed to compile: {exc}") from exc
        try:
            exec(code, namespace)  # noqa: S102 - the namespace is the sandbox
        except Exception as exc:
            self.loads_rejected += 1
            raise LoadError(
                f"switchlet {package.name!r} raised during its top-level forms: {exc!r}"
            ) from exc
        load_time = self._now()
        record = LoadedSwitchlet(package, namespace, load_time)
        self._loaded.append(record)
        self.loads_succeeded += 1
        if self._trace is not None:
            self._trace.emit(
                self._source_name,
                "switchlet.load",
                {"name": package.name, "source_bytes": len(package.source)},
            )
        return record

    def load_bytes(self, data: bytes) -> LoadedSwitchlet:
        """Deserialize a transported package and load it."""
        package = SwitchletPackage.from_bytes(data)
        return self.load(package)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def loaded(self) -> list:
        """The switchlets loaded so far, in load order."""
        return list(self._loaded)

    def loaded_names(self) -> list:
        """Names of the loaded switchlets, in load order."""
        return [record.name for record in self._loaded]

    def is_loaded(self, name: str) -> bool:
        """Whether a switchlet with this name has been loaded."""
        return any(record.name == name for record in self._loaded)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_integrity(self, package: SwitchletPackage) -> None:
        if digest_source(package.source) != package.source_digest:
            self.loads_rejected += 1
            raise SignatureMismatch(
                f"switchlet {package.name!r} source digest mismatch "
                "(package was altered after it was built)"
            )

    def _check_interfaces(self, package: SwitchletPackage) -> None:
        for module_name, expected_digest in package.requires.items():
            module = self._available_units.get(module_name)
            if module is None:
                self.loads_rejected += 1
                raise SignatureMismatch(
                    f"switchlet {package.name!r} requires module {module_name!r}, "
                    "which this loader does not provide"
                )
            actual = digest_module(module)
            if actual != expected_digest:
                self.loads_rejected += 1
                raise SignatureMismatch(
                    f"switchlet {package.name!r} was compiled against a different "
                    f"interface for {module_name!r} "
                    f"(expected {expected_digest}, found {actual})"
                )

    def _build_namespace(self) -> Dict[str, object]:
        namespace: Dict[str, object] = dict(self._available_units)
        namespace["__builtins__"] = safe_builtins()
        return namespace

    def _now(self) -> float:
        if self._trace is None:
            return 0.0
        # TraceRecorder keeps a reference to the clock; reuse it for timestamps.
        return self._trace._clock.now  # noqa: SLF001 - deliberate internal access

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SwitchletLoader(units={len(self._available_units)}, "
            f"loaded={len(self._loaded)})"
        )
