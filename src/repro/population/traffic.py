"""Synthetic traffic matrices over typed station fleets.

Four synthesis axes, all seeded and all driven from scenario parameters
(:data:`TRAFFIC_DEFAULTS` names every axis a catalog entry can sweep):

* ``request-response`` — workstations issue UDP requests to their
  assigned application server (servers likewise query their database,
  and a thinned stream of lookup clients queries the gateway); the
  serving station answers from its bound port and the client emits a
  ``svc.rtt`` trace record per completed exchange.  Those records *are*
  the latency instrument: they ship back from process workers with the
  trace streams, so p99 service latency is measurable on every backend.
* ``onoff-burst`` — a seeded subset of workstations run on/off sources:
  bursts of pooled raw frames at a fixed in-burst rate to a same-segment
  peer, separated by exponential off periods.
* ``pareto-flow`` — response sizes and burst lengths are drawn from
  seeded bounded Pareto streams (:func:`bounded_pareto`), giving the
  heavy-tailed flow-size mix real traffic has.
* ``diurnal`` — a deterministic load curve (:func:`diurnal_factor`)
  modulates every inter-arrival draw, sweeping offered load from trough
  to peak over the scenario's configured "day".

Determinism is load-bearing everywhere: every stochastic stream is a
private ``random.Random`` seeded from ``(traffic_seed, station, kind)``
— no draw order is shared between stations, so relaxed shard
interleaving cannot perturb a single sample — and every timer rides a
:class:`~repro.sim.wheel.TimerWheel` whose integer quantization is
engine-independent.  The population scenario tests assert the resulting
canonical traces bit-identical across single / strict / relaxed /
process runs.

Call :func:`install_traffic` on a compiled run **before**
``run.warm_up()``: the installer schedules a short *learning prelude*
inside the warm-up window (the gateway broadcasts once, then every
serving station sends one unicast past the core) so each bridge learns
every service MAC before measurement starts — first-packet floods would
otherwise cross the whole fleet, and on the process backend warm-up is
the only in-parent dispatch where that learned state can be built once
and inherited by every worker.
"""

from __future__ import annotations

import math
import random
import struct
from typing import Dict, List, Optional

from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import BROADCAST
from repro.ethernet.pool import FramePool
from repro.population.roles import SERVICES, role_of
from repro.sim.clock import seconds_to_ns
from repro.sim.wheel import DEFAULT_TICK_NS, TimerWheel

#: The synthesis axes (docs coverage contract: each kind is documented in
#: ``docs/architecture.md`` exactly like the fault kinds).
TRAFFIC_KINDS = ("request-response", "onoff-burst", "pareto-flow", "diurnal")

#: Every traffic parameter a population catalog entry accepts, with its
#: default.  Scenario params (``spec.params``) override these, so traffic
#: axes sweep through the ordinary matrix machinery.
TRAFFIC_DEFAULTS: Dict[str, object] = {
    "duration": 1.0,  # seconds of offered traffic after ready_time
    "traffic_seed": 0,  # seeds every per-station stream
    "wheel_tick_ns": DEFAULT_TICK_NS,  # timer-wheel quantum
    "request_rate": 4.0,  # app requests/s per workstation (at peak load)
    "db_rate": 1.0,  # database queries/s per server
    "dns_rate": 0.25,  # gateway lookups/s per lookup client
    "dns_client_every": 4,  # every Nth workstation runs a lookup client
    "onoff_fraction": 0.25,  # fraction of workstations running burst sources
    "burst_rate": 400.0,  # frames/s inside a burst
    "burst_alpha": 1.4,  # Pareto shape for burst lengths (frames)
    "burst_xmin": 4,
    "burst_xmax": 64,
    "burst_frame_size": 256,  # payload bytes of burst filler frames
    "off_mean": 0.4,  # mean off-period seconds (at peak load)
    "flow_alpha": 1.3,  # Pareto shape for response flow sizes (bytes)
    "flow_xmin": 96,
    "flow_xmax": 1400,
    "diurnal_period": 2.0,  # seconds per simulated "day"
    "diurnal_trough": 0.3,  # load multiplier at the trough (peak = 1.0)
}

#: Request/response wire header: request id, requested response size.
_HEADER = struct.Struct(">II")

#: Prelude schedule inside the warm-up window (absolute seconds).
_ANNOUNCE_BROADCAST_AT = 0.010
_ANNOUNCE_START = 0.020
_ANNOUNCE_GAP = 2e-6


def bounded_pareto(rng: random.Random, alpha: float, xmin: float, xmax: float) -> float:
    """One sample from a Pareto(alpha, xmin) clamped to ``xmax``.

    Inverse-transform sampling: one uniform draw per sample, so a
    source's stream position depends only on its own sample count.
    """
    u = rng.random()
    value = xmin / (1.0 - u) ** (1.0 / alpha)
    return value if value < xmax else xmax


def diurnal_factor(elapsed: float, period: float, trough: float) -> float:
    """Deterministic diurnal load multiplier in ``[trough, 1.0]``.

    A raised cosine starting at the trough: load ramps up to the peak at
    mid-"day" and back down, repeating every ``period`` seconds.
    """
    phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * (elapsed / period)))
    return trough + (1.0 - trough) * phase


class _EngineLane:
    """Per-home-engine machinery: one wheel, one pool, one stats block."""

    __slots__ = ("sim", "wheel", "pool", "stats")

    def __init__(self, sim, tick_ns: int) -> None:
        self.sim = sim
        self.wheel = TimerWheel(sim, tick_ns)
        self.pool = FramePool()
        self.stats = {
            "requests_sent": 0,
            "responses_received": 0,
            "responses_sent": 0,
            "bursts_started": 0,
            "burst_frames": 0,
        }


class _RequestClient:
    """A request/response service client: seeded arrivals, RTT records."""

    __slots__ = (
        "host",
        "lane",
        "rng",
        "service",
        "server_ip",
        "source_port",
        "start_s",
        "stop_ns",
        "rate",
        "flow_alpha",
        "flow_xmin",
        "flow_xmax",
        "period",
        "trough",
        "pending",
        "next_id",
        "rtt_category",
    )

    def __init__(
        self,
        host,
        lane: _EngineLane,
        rng: random.Random,
        service,
        server,
        source_port: int,
        start_s: float,
        stop_ns: int,
        rate: float,
        params: Dict[str, object],
    ) -> None:
        self.host = host
        self.lane = lane
        self.rng = rng
        self.service = service
        self.server_ip = server.ip
        self.source_port = source_port
        self.start_s = start_s
        self.stop_ns = stop_ns
        self.rate = rate
        self.flow_alpha = float(params["flow_alpha"])
        self.flow_xmin = float(params["flow_xmin"])
        self.flow_xmax = float(params["flow_xmax"])
        self.period = float(params["diurnal_period"])
        self.trough = float(params["diurnal_trough"])
        self.pending: Dict[int, int] = {}
        self.next_id = 0
        self.rtt_category = "svc.rtt"
        host.bind_udp(source_port, self._on_response)

    def _factor(self) -> float:
        elapsed = self.lane.sim.clock.now - self.start_s
        if elapsed < 0.0:
            elapsed = 0.0
        return diurnal_factor(elapsed, self.period, self.trough)

    def arm(self) -> None:
        """Schedule the next request arrival from the seeded stream."""
        gap = self.rng.expovariate(self.rate) / self._factor()
        self.lane.wheel.schedule(gap, self._fire)

    def _fire(self) -> None:
        now_ns = self.lane.sim.clock.now_ns
        if now_ns >= self.stop_ns:
            return
        request_id = self.next_id
        self.next_id = request_id + 1
        flow_size = int(
            bounded_pareto(self.rng, self.flow_alpha, self.flow_xmin, self.flow_xmax)
        )
        header = _HEADER.pack(request_id & 0xFFFFFFFF, flow_size)
        pad = self.service.request_size - len(header)
        payload = header + self.lane.pool.filler(pad) if pad > 0 else header
        self.pending[request_id & 0xFFFFFFFF] = now_ns
        self.lane.stats["requests_sent"] += 1
        self.host.send_udp(
            self.server_ip, self.service.port, self.source_port, payload
        )
        self.arm()

    def _on_response(self, payload: bytes, _addr) -> None:
        if len(payload) < _HEADER.size:
            return
        request_id, flow_size = _HEADER.unpack_from(payload)
        sent_ns = self.pending.pop(request_id, None)
        if sent_ns is None:
            return
        sim = self.lane.sim
        rtt_ns = sim.clock.now_ns - sent_ns
        self.lane.stats["responses_received"] += 1
        sim.trace.emit(
            self.host.name,
            self.rtt_category,
            {"service": self.service.name, "rtt_ns": rtt_ns, "size": flow_size},
        )


class _Responder:
    """A serving station: answers requests with the size the client asked."""

    __slots__ = ("host", "lane", "service")

    def __init__(self, host, lane: _EngineLane, service) -> None:
        self.host = host
        self.lane = lane
        self.service = service
        host.bind_udp(service.port, self._on_request)

    def _on_request(self, payload: bytes, addr) -> None:
        if len(payload) < _HEADER.size:
            return
        request_id, flow_size = _HEADER.unpack_from(payload)
        header = _HEADER.pack(request_id, flow_size)
        pad = flow_size - len(header)
        response = header + self.lane.pool.filler(pad) if pad > 0 else header
        source_ip, source_port = addr
        self.lane.stats["responses_sent"] += 1
        self.host.send_udp(source_ip, source_port, self.service.port, response)


class _OnOffSource:
    """A bursty on/off raw-frame source aimed at a same-segment peer."""

    __slots__ = (
        "host",
        "lane",
        "rng",
        "frame",
        "start_s",
        "stop_ns",
        "gap_s",
        "burst_alpha",
        "burst_xmin",
        "burst_xmax",
        "off_mean",
        "period",
        "trough",
        "remaining",
    )

    def __init__(
        self,
        host,
        peer_mac,
        lane: _EngineLane,
        rng: random.Random,
        start_s: float,
        stop_ns: int,
        params: Dict[str, object],
    ) -> None:
        self.host = host
        self.lane = lane
        self.rng = rng
        self.start_s = start_s
        self.stop_ns = stop_ns
        self.gap_s = 1.0 / float(params["burst_rate"])
        self.burst_alpha = float(params["burst_alpha"])
        self.burst_xmin = float(params["burst_xmin"])
        self.burst_xmax = float(params["burst_xmax"])
        self.off_mean = float(params["off_mean"])
        self.period = float(params["diurnal_period"])
        self.trough = float(params["diurnal_trough"])
        self.remaining = 0
        self.frame = lane.pool.frame(
            peer_mac,
            host.mac,
            EtherType.MEASUREMENT,
            int(params["burst_frame_size"]),
        )

    def _factor(self) -> float:
        elapsed = self.lane.sim.clock.now - self.start_s
        if elapsed < 0.0:
            elapsed = 0.0
        return diurnal_factor(elapsed, self.period, self.trough)

    def arm(self) -> None:
        """Schedule the next burst after a seeded, load-modulated off period."""
        off = self.rng.expovariate(1.0 / self.off_mean) / self._factor()
        self.lane.wheel.schedule(off, self._start_burst)

    def _start_burst(self) -> None:
        if self.lane.sim.clock.now_ns >= self.stop_ns:
            return
        self.remaining = int(
            bounded_pareto(
                self.rng, self.burst_alpha, self.burst_xmin, self.burst_xmax
            )
        )
        self.lane.stats["bursts_started"] += 1
        self._send_next()

    def _send_next(self) -> None:
        if self.lane.sim.clock.now_ns >= self.stop_ns:
            return
        # Reuse the pooled frame: the pool hit is the recycling measure.
        self.frame = self.lane.pool.frame(
            self.frame.destination,
            self.frame.source,
            self.frame.ethertype,
            len(self.frame.payload),
        )
        self.host.send_raw_frame(self.frame)
        self.lane.stats["burst_frames"] += 1
        self.remaining -= 1
        if self.remaining > 0:
            self.lane.wheel.schedule(self.gap_s, self._send_next)
        else:
            self.arm()


class PopulationTraffic:
    """Handle on an installed traffic matrix: lanes, clients and horizons."""

    def __init__(
        self,
        run,
        params: Dict[str, object],
        lanes: Dict[int, _EngineLane],
        clients: List[_RequestClient],
        responders: List[_Responder],
        sources: List[_OnOffSource],
        start_s: float,
        stop_s: float,
    ) -> None:
        self.run = run
        self.params = params
        self.lanes = lanes
        self.clients = clients
        self.responders = responders
        self.sources = sources
        self.start_s = start_s
        self.stop_s = stop_s

    @property
    def horizon(self) -> float:
        """Simulated time by which in-flight exchanges have settled."""
        return self.stop_s + 0.05

    def pool_statistics(self) -> Dict[str, int]:
        """Aggregated frame-pool counters across lanes.

        Meaningful for in-process runs (single, strict, relaxed threads);
        under ``backend="process"`` the workers' pools advance in their
        own address spaces and the parent's copy stays at its pre-fork
        values.
        """
        totals = {"hits": 0, "misses": 0, "fillers": 0, "frames": 0}
        for lane in self.lanes.values():
            for key, value in lane.pool.statistics().items():
                totals[key] += value
        return totals

    def wheel_statistics(self) -> Dict[str, int]:
        """Aggregated timer-wheel counters across lanes (in-process runs)."""
        totals = {"scheduled": 0, "quantized": 0}
        for lane in self.lanes.values():
            totals["scheduled"] += lane.wheel.scheduled
            totals["quantized"] += lane.wheel.quantized
        return totals

    def traffic_statistics(self) -> Dict[str, int]:
        """Aggregated per-lane traffic counters (in-process runs)."""
        totals: Dict[str, int] = {}
        for lane in self.lanes.values():
            for key, value in lane.stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def service_rtts(self) -> List[int]:
        """Every completed exchange's RTT in nanoseconds, canonical order.

        Read from the ``svc.rtt`` trace records, so it works on every
        backend — including process runs, where the records ship back
        with the worker trace streams.
        """
        trace = self.run.sim.trace
        if hasattr(trace, "canonical_records"):
            records = trace.canonical_records()
        else:
            records = list(trace)
        return [
            record.detail["rtt_ns"]
            for record in records
            if record.category == "svc.rtt"
        ]


def merged_params(spec_params, overrides: Optional[Dict[str, object]] = None):
    """Traffic parameters: defaults <- scenario params <- explicit overrides."""
    merged = dict(TRAFFIC_DEFAULTS)
    for key, value in dict(spec_params or {}).items():
        if key in merged:
            merged[key] = value
    for key, value in dict(overrides or {}).items():
        if key not in TRAFFIC_DEFAULTS:
            raise ValueError(f"unknown traffic parameter {key!r}")
        merged[key] = value
    return merged


def install_traffic(run, **overrides) -> PopulationTraffic:
    """Install the scenario's traffic matrix onto a compiled population run.

    Must be called *before* ``run.warm_up()``: the learning prelude rides
    the warm-up window, and on the process backend the warm-up is the one
    in-parent dispatch where bridge tables and ARP state can be built
    once and inherited by every worker.

    Keyword overrides take precedence over the scenario's recorded
    params; both fall back to :data:`TRAFFIC_DEFAULTS`.
    """
    params = merged_params(getattr(run.spec, "params", {}), overrides)
    start_s = float(run.spec.ready_time)
    duration = float(params["duration"])
    stop_s = start_s + duration
    stop_ns = seconds_to_ns(stop_s)
    tick_ns = int(params["wheel_tick_ns"])
    seed = params["traffic_seed"]

    stations = [host for host in run.hosts if role_of(host.name) is not None]
    stations.sort(key=lambda host: host.name)
    by_role: Dict[str, List] = {}
    by_segment: Dict[str, List] = {}
    for host in stations:
        by_role.setdefault(role_of(host.name).name, []).append(host)
        by_segment.setdefault(host.nic.segment.name, []).append(host)

    servers = by_role.get("server", [])
    databases = by_role.get("database", [])
    gateways = by_role.get("gateway", [])
    workstations = by_role.get("workstation", [])
    if not servers or not gateways:
        raise ValueError(
            "population traffic needs at least one server and one gateway"
        )
    core_segment = gateways[0].nic.segment.name
    core_databases = [
        db for db in databases if db.nic.segment.name == core_segment
    ] or databases

    lanes: Dict[int, _EngineLane] = {}

    def lane_for(host) -> _EngineLane:
        key = id(host.sim)
        lane = lanes.get(key)
        if lane is None:
            lane = lanes[key] = _EngineLane(host.sim, tick_ns)
        return lane

    def station_rng(host, kind: str) -> random.Random:
        return random.Random(f"{seed}:{host.name}:{kind}")

    next_port: Dict[str, int] = {}

    def allocate_port(host) -> int:
        port = next_port.get(host.name, 20000)
        next_port[host.name] = port + 1
        return port

    def pair_arp(client, server) -> None:
        client.stack.add_static_arp(server.ip, server.mac)
        server.stack.add_static_arp(client.ip, client.mac)

    clients: List[_RequestClient] = []
    responders: List[_Responder] = []
    sources: List[_OnOffSource] = []

    # Serving stations bind their declared ports once each.
    for role_name, service_keys in (
        ("server", ("app",)),
        ("database", ("db",)),
        ("gateway", ("dns",)),
    ):
        for host in by_role.get(role_name, []):
            for key in service_keys:
                responders.append(_Responder(host, lane_for(host), SERVICES[key]))

    def add_client(host, service_key: str, server, rate: float) -> None:
        if server is None or rate <= 0.0:
            return
        pair_arp(host, server)
        client = _RequestClient(
            host,
            lane_for(host),
            station_rng(host, service_key),
            SERVICES[service_key],
            server,
            allocate_port(host),
            start_s,
            stop_ns,
            rate,
            params,
        )
        clients.append(client)

    # Workstations consume the application service from a same-segment
    # server (round-robin when a segment holds several).
    for segment, members in sorted(by_segment.items()):
        local_servers = [h for h in members if role_of(h.name).name == "server"]
        if not local_servers:
            local_servers = servers
        seats = [h for h in members if role_of(h.name).name == "workstation"]
        for index, seat in enumerate(seats):
            add_client(
                seat,
                "app",
                local_servers[index % len(local_servers)],
                float(params["request_rate"]),
            )

    # Servers consume the database service: rack-local database when one
    # exists, the core databases otherwise (round-robin).
    for index, server in enumerate(servers):
        segment = server.nic.segment.name
        local_dbs = [
            h
            for h in by_segment.get(segment, [])
            if role_of(h.name).name == "database"
        ]
        target_pool = local_dbs or core_databases
        add_client(
            server,
            "db",
            target_pool[index % len(target_pool)],
            float(params["db_rate"]),
        )

    # A thinned stream of lookup clients keeps the gateway busy without
    # flooding the shared core at population scale.
    every = max(1, int(params["dns_client_every"]))
    for index, seat in enumerate(workstations):
        if index % every == 0:
            add_client(
                seat, "dns", gateways[index % len(gateways)], float(params["dns_rate"])
            )

    # Bursty on/off sources: a seeded subset of workstations blasting a
    # same-segment peer with pooled raw frames.
    chooser = random.Random(f"{seed}:onoff")
    fraction = float(params["onoff_fraction"])
    for seat in workstations:
        take = chooser.random() < fraction
        if not take:
            continue
        members = by_segment[seat.nic.segment.name]
        if len(members) < 2:
            continue
        peer = members[(members.index(seat) + 1) % len(members)]
        sources.append(
            _OnOffSource(
                seat,
                peer.mac,
                lane_for(seat),
                station_rng(seat, "onoff"),
                start_s,
                stop_ns,
                params,
            )
        )

    # ------------------------------------------------------------------
    # Learning prelude (runs inside the warm-up window): gateway
    # broadcasts teach every bridge where the core is, then each serving
    # station sends one unicast past the core so its MAC is learned
    # fleet-wide — no first-packet floods once measurement starts.
    # ------------------------------------------------------------------
    gateway_mac = gateways[0].mac

    def announce(host, destination, at_s: float) -> None:
        frame = EthernetFrame(
            destination=destination,
            source=host.mac,
            ethertype=EtherType.MEASUREMENT,
            payload=b"population-announce",
        )
        host.sim.schedule_at_ns(
            seconds_to_ns(at_s),
            lambda: host.send_raw_frame(frame, charge_cost=False),
            label="population.announce",
        )

    for index, gateway in enumerate(gateways):
        announce(gateway, BROADCAST, _ANNOUNCE_BROADCAST_AT + index * _ANNOUNCE_GAP)
    announced = [
        host
        for host in stations
        if role_of(host.name).name in ("server", "database")
    ]
    for index, host in enumerate(announced):
        announce(host, gateway_mac, _ANNOUNCE_START + index * _ANNOUNCE_GAP)
    prelude_end = _ANNOUNCE_START + len(announced) * _ANNOUNCE_GAP
    if prelude_end >= start_s:
        raise ValueError(
            f"learning prelude ends at {prelude_end:.3f}s but traffic starts "
            f"at ready_time {start_s:.3f}s; raise the scenario's ready_time"
        )

    # Arm every seeded stream: first arrivals land after ready_time.
    for client in clients:
        lane = client.lane
        lane.sim.schedule_at_ns(
            seconds_to_ns(start_s), client.arm, label="population.start"
        )
    for source in sources:
        source.lane.sim.schedule_at_ns(
            seconds_to_ns(start_s), source.arm, label="population.start"
        )

    return PopulationTraffic(
        run, params, lanes, clients, responders, sources, start_s, stop_s
    )
