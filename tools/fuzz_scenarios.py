"""Property-based scenario fuzzing: the invariance contract as a bug hunter.

Every case draws a random topology (one of the ``gen/*`` generators with
seeded parameters), a random fault timeline, and a random engine
configuration (shard count, workers, backend), then asserts the engine-mode
invariance oracle:

* **interchange** — the spec survives a YAML (or JSON) round-trip exactly,
  and the reference run is driven *from the round-tripped spec*, so every
  case is also a serialization bit-identity proof;
* **strict** — strict sharded execution is bit-identical (``list(trace)``)
  to the single engine, on every case, no exceptions;
* **relaxed** — relaxed execution is canonical-merge bit-identical to
  strict, *except* when the reference trace contains a same-instant
  multi-sender wire tie: the canonical-merge contract deliberately refuses
  to order same-instant cross-source effects ("commuting effects only"), so
  a divergence at or after the first tie instant is recorded as
  ``tie-excused`` rather than a failure.  Divergence *before* any tie is a
  real bug.  Tie instants are a deterministic function of the case, so runs
  are reproducible — never flaky;
* **threaded / process** — relaxed threaded windows and the process backend
  must be bit-identical to sequential relaxed execution (the documented
  determinism contract), ties or no ties.

A failing case is shrunk greedily — faults, hosts, devices, then whole
segments (with cascade) are dropped while the failure reproduces — and the
minimal case is written as a committed-ready interchange document (spec +
pinned partition + run metadata) for a regression suite.

Usage::

    PYTHONPATH=src python tools/fuzz_scenarios.py --cases 50 --seed 2026
    PYTHONPATH=src python tools/fuzz_scenarios.py --budget 60 --seed 20260807 --out fuzz-failures

Exits non-zero on the first real failure, after dumping the shrunk
reproducer.  ``tests/test_scenario_fuzz.py`` drives the same entry points in
the regular test lane and proves the harness catches (and shrinks) an
injected determinism bug via the ``mutate`` hook.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from collections import defaultdict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults.spec import FaultSpec  # noqa: E402
from repro.measurement.ping import PingRunner  # noqa: E402
from repro.scenario import (  # noqa: E402
    FUZZ_PARAM_SPACE,
    GENERATORS,
    PartitionSpec,
    ScenarioSpec,
    get_scenario,
    run_scenario,
)
from repro.scenario import interchange  # noqa: E402

#: Wire format for reproducers: YAML when available, JSON otherwise.
FMT = "yaml" if interchange.yaml is not None else "json"

#: Record streams a mutation hook can intercept, in oracle order.
MODES = ("reference", "strict", "strict-canonical", "relaxed", "threaded", "process")

#: A mutation hook: ``(mode, records) -> records``.  The oracle passes every
#: record stream through it before comparing; tests inject determinism bugs
#: (drop or perturb a record in one mode) to prove the harness catches them.
Mutator = Callable[[str, List[object]], List[object]]


# ---------------------------------------------------------------------------
# Cases
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzCase:
    """One drawn (topology x faults x engine config) point.

    ``spec`` is always materialized (faults attached); ``generator`` and
    ``params`` are provenance for logs and reproducer metadata.
    """

    case_id: int
    generator: str
    params: Mapping[str, int]
    spec: ScenarioSpec
    shards: int
    workers: int
    check_process: bool


@dataclass
class CaseResult:
    """The oracle's verdict on one case."""

    case: FuzzCase
    status: str  # "exact" | "tie-excused" | "failed"
    failing_mode: Optional[str] = None
    detail: str = ""
    divergence_time: Optional[float] = None
    tie_horizon: Optional[float] = None
    records: int = 0

    @property
    def ok(self) -> bool:
        return self.status != "failed"

    def describe(self) -> str:
        case = self.case
        threads = f" workers={case.workers}" if case.workers else ""
        proc = " +process" if case.check_process else ""
        head = (
            f"case {case.case_id}: {case.generator or 'literal'} "
            f"{dict(case.params)} faults={len(case.spec.faults)} "
            f"shards={case.shards}{threads}{proc} -> {self.status}"
        )
        if self.status == "tie-excused":
            head += f" (tie horizon t={self.tie_horizon:g}s)"
        if self.status == "failed":
            head += f" [{self.failing_mode}] {self.detail}"
        return head


def _fault_window(rng: random.Random, ready: float) -> float:
    """A fault instant on the 1 ms grid, between mid-convergence and
    shortly after the scenario is ready (so every drawn fault fires within
    the driven horizon)."""
    return round(0.4 * ready + rng.random() * (0.6 * ready + 0.4), 3)


def _draw_faults(rng: random.Random, spec: ScenarioSpec) -> Tuple[FaultSpec, ...]:
    """0..2 fault episodes against ``spec``'s own component names."""
    segments = [segment.name for segment in spec.segments]
    devices = [device for device in spec.devices if device.ports]
    faults: List[FaultSpec] = []
    for _ in range(rng.choice((0, 0, 1, 1, 2))):
        kind = rng.choice(("link-flap", "frame-loss", "degrade", "port-flap",
                           "node-bounce"))
        at = _fault_window(rng, spec.ready_time)
        back = round(at + 0.1 + 0.2 * rng.random(), 3)
        if kind == "link-flap":
            target = rng.choice(segments)
            faults.append(FaultSpec("link-down", at, target))
            faults.append(FaultSpec("link-up", back, target))
        elif kind == "frame-loss":
            faults.append(FaultSpec(
                "frame-loss", at, rng.choice(segments),
                rate=round(rng.uniform(0.05, 0.35), 2),
                seed=rng.randrange(1 << 16),
            ))
        elif kind == "degrade":
            faults.append(FaultSpec(
                "degrade", at, rng.choice(segments),
                bandwidth_scale=round(rng.uniform(0.5, 0.9), 2),
                extra_delay=rng.randrange(0, 2000) * 1e-9,
            ))
        elif kind == "port-flap" and devices:
            device = rng.choice(devices)
            port = rng.choice(device.ports).name
            faults.append(FaultSpec("port-down", at, device.name, port=port))
            faults.append(FaultSpec("port-up", back, device.name, port=port))
        elif kind == "node-bounce" and devices:
            device = rng.choice(devices)
            faults.append(FaultSpec("node-crash", at, device.name))
            faults.append(FaultSpec("node-restart", back, device.name))
    return tuple(sorted(faults, key=lambda fault: (fault.at, fault.kind)))


def draw_case(master_seed: int, case_id: int) -> FuzzCase:
    """Deterministically draw case ``case_id`` of the ``master_seed`` stream."""
    rng = random.Random(f"fuzz:{master_seed}:{case_id}")
    generator = rng.choice(GENERATORS)
    params: Dict[str, int] = {
        name: rng.randint(low, high)
        for name, (low, high) in FUZZ_PARAM_SPACE[generator].items()
    }
    params["seed"] = rng.randrange(1 << 16)
    spec = get_scenario(generator, **params)
    faults = _draw_faults(rng, spec)
    if faults:
        spec = replace(spec, faults=faults)
    shards = rng.randint(2, 4)
    return FuzzCase(
        case_id=case_id,
        generator=generator,
        params=params,
        spec=spec,
        shards=shards,
        workers=rng.choice((0, shards)),
        check_process=rng.random() < 0.125,
    )


# ---------------------------------------------------------------------------
# Driving and the oracle
# ---------------------------------------------------------------------------


def _drive(spec: ScenarioSpec, shards: int = 1, sync: str = "strict",
           workers: int = 0, backend: str = "thread"):
    """The fixed fuzz workload: warm up, ping end-to-end, run out the faults."""
    run = run_scenario(spec, shards=shards, sync=sync, workers=workers,
                       backend=backend)
    run.warm_up()
    hosts = run.hosts
    if len(hosts) >= 2:
        PingRunner(run.sim, hosts[0], hosts[-1].ip, payload_size=64, count=2,
                   interval=0.05).run(start_time=run.sim.now)
    horizon = max([spec.ready_time] + [fault.at for fault in spec.faults]) + 0.5
    if run.sim.now < horizon:
        run.sim.run_until(horizon)
    return run


def _canonical(run) -> List[object]:
    trace = run.sim.trace
    if hasattr(trace, "canonical_records"):
        return trace.canonical_records()
    return list(trace)


def _record_key(record) -> tuple:
    return (record.time, record.source, record.category, repr(record.detail))


def find_tie_times(records: Sequence[object]) -> List[float]:
    """Instants at which two *different* senders enqueue onto one segment.

    These are exactly the same-instant cross-source wire ties the
    canonical-merge contract scopes out; everything before the first one is
    promised bit-identical under relaxed execution.
    """
    groups = defaultdict(set)
    for record in records:
        if record.category == "segment.enqueue":
            groups[(record.source, record.time)].add(record.detail.get("sender"))
    return sorted(at for (_, at), senders in groups.items() if len(senders) > 1)


def first_divergence_time(
    left: Sequence[object], right: Sequence[object]
) -> Optional[float]:
    """Time of the first record at which the streams disagree (None if equal)."""
    for a, b in zip(left, right):
        if _record_key(a) != _record_key(b):
            return min(a.time, b.time)
    if len(left) != len(right):
        longer = left if len(left) > len(right) else right
        return longer[min(len(left), len(right))].time
    return None


def _identity(_mode: str, records: List[object]) -> List[object]:
    return records


def run_case(case: FuzzCase, mutate: Optional[Mutator] = None) -> CaseResult:
    """Run every engine mode of ``case`` and compare under the oracle."""
    mutate = mutate or _identity
    spec = case.spec

    # Interchange round trip; the reference run is driven from the
    # round-tripped spec, so serialization is on the oracle path.
    loaded = interchange.load_scenario(
        interchange.dump_scenario(spec, fmt=FMT), fmt=FMT
    ).spec
    if loaded != spec:
        return CaseResult(case, "failed", failing_mode="interchange",
                          detail=f"{FMT} round trip is not lossless")

    reference = _drive(loaded, 1)
    ref_records = mutate("reference", list(reference.sim.trace))
    ties = find_tie_times(ref_records)
    horizon = ties[0] if ties else None

    strict = _drive(loaded, case.shards)
    strict_records = mutate("strict", list(strict.sim.trace))
    if strict_records != ref_records:
        return CaseResult(
            case, "failed", failing_mode="strict",
            detail="strict shards diverged from the single engine",
            divergence_time=first_divergence_time(ref_records, strict_records),
            tie_horizon=horizon, records=len(ref_records),
        )

    strict_canonical = mutate("strict-canonical", _canonical(strict))
    relaxed = _drive(loaded, case.shards, sync="relaxed")
    relaxed_canonical = mutate("relaxed", _canonical(relaxed))
    status = "exact"
    divergence = None
    if relaxed_canonical != strict_canonical:
        divergence = first_divergence_time(strict_canonical, relaxed_canonical)
        if horizon is None or divergence is None or divergence < horizon:
            return CaseResult(
                case, "failed", failing_mode="relaxed",
                detail="relaxed diverged before any wire tie",
                divergence_time=divergence, tie_horizon=horizon,
                records=len(ref_records),
            )
        status = "tie-excused"

    if case.workers:
        threaded = _drive(loaded, case.shards, sync="relaxed",
                          workers=case.workers)
        threaded_canonical = mutate("threaded", _canonical(threaded))
        if threaded_canonical != relaxed_canonical:
            return CaseResult(
                case, "failed", failing_mode="threaded",
                detail="threaded relaxed diverged from sequential relaxed",
                divergence_time=first_divergence_time(
                    relaxed_canonical, threaded_canonical
                ),
                tie_horizon=horizon, records=len(ref_records),
            )

    if case.check_process:
        process = _drive(loaded, case.shards, sync="relaxed",
                         workers=max(1, case.workers), backend="process")
        process_canonical = mutate("process", _canonical(process))
        if process_canonical != relaxed_canonical:
            return CaseResult(
                case, "failed", failing_mode="process",
                detail="process backend diverged from sequential relaxed",
                divergence_time=first_divergence_time(
                    relaxed_canonical, process_canonical
                ),
                tie_horizon=horizon, records=len(ref_records),
            )

    return CaseResult(case, status, divergence_time=divergence,
                      tie_horizon=horizon, records=len(ref_records))


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _without_segment(spec: ScenarioSpec, name: str) -> ScenarioSpec:
    """Drop ``name`` and cascade: its hosts, ports on it, now-portless
    devices, and faults aimed at anything removed."""
    devices = []
    removed_stations = set()
    for device in spec.devices:
        ports = tuple(port for port in device.ports if port.segment != name)
        if ports:
            devices.append(replace(device, ports=ports))
        else:
            removed_stations.add(device.name)
    hosts = tuple(host for host in spec.hosts if host.segment != name)
    removed_stations.update(
        host.name for host in spec.hosts if host.segment == name
    )
    kept_ports = {
        (device.name, port.name) for device in devices for port in device.ports
    }
    faults = tuple(
        fault for fault in spec.faults
        if fault.target != name
        and fault.target not in removed_stations
        and (fault.port is None or (fault.target, fault.port) in kept_ports)
    )
    return replace(
        spec,
        segments=tuple(s for s in spec.segments if s.name != name),
        hosts=hosts,
        devices=tuple(devices),
        faults=faults,
    )


def _spec_reductions(spec: ScenarioSpec):
    """Candidate one-step reductions, cheapest-to-try first."""
    for index in range(len(spec.faults)):
        yield replace(
            spec, faults=spec.faults[:index] + spec.faults[index + 1:]
        )
    for host in spec.hosts:
        yield replace(
            spec, hosts=tuple(h for h in spec.hosts if h.name != host.name),
            faults=tuple(f for f in spec.faults if f.target != host.name),
        )
    for device in spec.devices:
        yield replace(
            spec,
            devices=tuple(d for d in spec.devices if d.name != device.name),
            faults=tuple(f for f in spec.faults if f.target != device.name),
        )
    for segment in spec.segments:
        yield _without_segment(spec, segment.name)


def _engine_reductions(case: FuzzCase):
    """Simplify the engine configuration before touching the topology."""
    if case.check_process:
        yield replace(case, check_process=False)
    if case.workers:
        yield replace(case, workers=0)
    if case.shards > 2:
        yield replace(case, shards=2)


def shrink_case(
    case: FuzzCase,
    result: CaseResult,
    mutate: Optional[Mutator] = None,
    log: Callable[[str], None] = lambda line: None,
) -> Tuple[FuzzCase, CaseResult]:
    """Greedily minimize a failing case while the same mode keeps failing."""
    failing_mode = result.failing_mode
    best_case, best_result = case, result

    def still_fails(candidate: FuzzCase) -> Optional[CaseResult]:
        try:
            res = run_case(candidate, mutate=mutate)
        except Exception:  # invalid reduction (un-compilable spec, ...)
            return None
        if res.status == "failed" and res.failing_mode == failing_mode:
            return res
        return None

    for candidate in _engine_reductions(best_case):
        res = still_fails(candidate)
        if res is not None:
            best_case, best_result = candidate, res
            log(f"  shrink: engine -> shards={best_case.shards} "
                f"workers={best_case.workers} process={best_case.check_process}")

    changed = True
    while changed:
        changed = False
        for reduced in _spec_reductions(best_case.spec):
            candidate = replace(best_case, spec=reduced)
            res = still_fails(candidate)
            if res is not None:
                best_case, best_result = candidate, res
                spec = reduced
                log(f"  shrink: {len(spec.segments)} segment(s), "
                    f"{len(spec.hosts)} host(s), {len(spec.devices)} "
                    f"device(s), {len(spec.faults)} fault(s)")
                changed = True
                break
    return best_case, best_result


# ---------------------------------------------------------------------------
# Reproducers
# ---------------------------------------------------------------------------


def _failing_partition(case: FuzzCase, failing_mode: str) -> PartitionSpec:
    if failing_mode in ("strict", "interchange"):
        return PartitionSpec(shards=case.shards, sync="strict")
    return PartitionSpec(
        shards=case.shards,
        sync="relaxed",
        workers=case.workers if failing_mode == "threaded" else (
            max(1, case.workers) if failing_mode == "process" else 0
        ),
        backend="process" if failing_mode == "process" else "thread",
    )


def write_reproducer(
    out_dir: Path, master_seed: int, case: FuzzCase, result: CaseResult
) -> Path:
    """Dump the (shrunk) failing case as a committed-ready interchange file."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"case-{case.case_id:04d}.{FMT}"
    run_block = {
        "fuzz_seed": master_seed,
        "case": case.case_id,
        "generator": case.generator,
        "params": dict(case.params),
        "failing_mode": result.failing_mode,
        "divergence_time": result.divergence_time,
        "detail": result.detail,
        "drive": "warm_up; ping hosts[0]->hosts[-1] count=2 interval=0.05; "
                 "run_until(max(ready_time, last fault) + 0.5)",
    }
    return interchange.save_scenario(
        path, case.spec,
        partition=_failing_partition(case, result.failing_mode or "relaxed"),
        run=run_block,
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def fuzz(
    cases: int,
    master_seed: int,
    budget: Optional[float] = None,
    out_dir: Path = Path("fuzz-failures"),
    shrink: bool = True,
    log: Callable[[str], None] = print,
) -> int:
    """Run up to ``cases`` cases (bounded by ``budget`` seconds); 0 = green."""
    started = time.monotonic()
    tally = defaultdict(int)
    ran = 0
    for case_id in range(cases):
        if budget is not None and time.monotonic() - started > budget:
            log(f"budget exhausted after {ran} case(s)")
            break
        case = draw_case(master_seed, case_id)
        result = run_case(case)
        tally[result.status] += 1
        ran += 1
        log(result.describe())
        if not result.ok:
            if shrink:
                log("shrinking...")
                case, result = shrink_case(case, result, log=log)
            path = write_reproducer(out_dir, master_seed, case, result)
            log(f"reproducer written: {path}")
            log(f"FAIL after {ran} case(s): {result.describe()}")
            return 1
    log(
        f"ok: {ran} case(s) in {time.monotonic() - started:.1f}s "
        f"(exact={tally['exact']}, tie-excused={tally['tie-excused']})"
    )
    return 0


def write_report(path: Path, master_seed: int) -> None:
    """A telemetry-instrumented RunReport over the first drawn case.

    Written after a green sweep so the CI smoke lane always publishes a
    full metrics/segments/wall document from a generated topology — the
    same drive the oracle uses, with telemetry on (which the determinism
    tests prove changes nothing).
    """
    case = draw_case(master_seed, 0)
    run = run_scenario(case.spec, shards=case.shards, sync="relaxed",
                       workers=case.workers, telemetry=True)
    run.warm_up()
    hosts = run.hosts
    rtts = []
    if len(hosts) >= 2:
        result = PingRunner(run.sim, hosts[0], hosts[-1].ip, payload_size=64,
                            count=2, interval=0.05).run(start_time=run.sim.now)
        rtts = [int(rtt * 1e9) for rtt in result.rtts]
    horizon = max([case.spec.ready_time] +
                  [fault.at for fault in case.spec.faults]) + 0.5
    if run.sim.now < horizon:
        run.sim.run_until(horizon)
    path.write_text(run.report(latency_ns=rtts).to_json() + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fuzz the engine-mode invariance contract over generated "
                    "topologies, fault timelines and engine configurations."
    )
    parser.add_argument("--cases", type=int, default=50,
                        help="maximum cases to draw (default 50)")
    parser.add_argument("--seed", type=int, default=2026,
                        help="master seed for the case stream (default 2026)")
    parser.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds (default: none)")
    parser.add_argument("--out", type=Path, default=Path("fuzz-failures"),
                        help="directory for shrunk failing-case documents")
    parser.add_argument("--no-shrink", action="store_true",
                        help="dump the raw failing case without minimizing")
    parser.add_argument("--report", type=Path, default=None,
                        help="after a green sweep, write a telemetry "
                             "RunReport JSON for the first case here")
    args = parser.parse_args(argv)
    status = fuzz(args.cases, args.seed, budget=args.budget, out_dir=args.out,
                  shrink=not args.no_shrink)
    if status == 0 and args.report is not None:
        write_report(args.report, args.seed)
        print(f"run report written to {args.report}")
    return status


if __name__ == "__main__":
    sys.exit(main())
