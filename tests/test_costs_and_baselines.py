"""Tests for the cost model, the CPU queue, and the baseline network elements."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.c_repeater import BufferedRepeater
from repro.baselines.static_bridge import StaticLearningBridge
from repro.costs.cpu import CpuQueue
from repro.costs.model import CostModel
from repro.lan.segment import Segment
from repro.lan.topology import NetworkBuilder


class TestCostModel:
    def test_calibration_anchors(self):
        model = CostModel()
        # 0.47 ms inside the interpreter at 1024-byte frames (paper, 7.3).
        assert model.switchlet_frame_cost(1024) == pytest.approx(0.47e-3, rel=0.05)
        # ~1790 frames/second through the full bridge path at 1024 bytes.
        assert 1600 < model.bridge_frame_rate_ceiling(1024) < 2000
        # ~2100 frames/second interpreter-only ceiling.
        assert 1900 < model.interpreter_frame_rate_ceiling(1024) < 2300

    def test_bridge_cost_composition(self):
        model = CostModel()
        assert model.bridge_frame_cost(500) == pytest.approx(
            2 * model.kernel_crossing_cost + model.switchlet_frame_cost(500)
        )

    def test_repeater_cheaper_than_bridge(self):
        model = CostModel()
        for size in (64, 512, 1500):
            assert model.repeater_frame_cost_total(size) < model.bridge_frame_cost(size)

    def test_native_code_ablation(self):
        model = CostModel()
        native = model.with_native_code(10.0)
        assert native.interpreter_frame_cost == pytest.approx(model.interpreter_frame_cost / 10)
        assert native.kernel_crossing_cost == model.kernel_crossing_cost

    def test_user_level_networking_ablation(self):
        model = CostModel()
        unet = model.with_user_level_networking(0.9)
        assert unet.kernel_crossing_cost == pytest.approx(model.kernel_crossing_cost * 0.1)

    def test_gc_ablation_and_scaling(self):
        model = CostModel().with_gc_pauses(0.5, 3e-3)
        assert model.gc_pause_duration == 3e-3
        scaled = CostModel().scaled(2.0)
        assert scaled.interpreter_frame_cost == pytest.approx(2 * CostModel().interpreter_frame_cost)

    def test_load_cost_positive(self):
        assert CostModel().load_cost() > 0

    @given(st.integers(min_value=0, max_value=9000))
    @settings(max_examples=50, deadline=None)
    def test_costs_monotonic_in_size(self, size):
        model = CostModel()
        assert model.bridge_frame_cost(size + 1) >= model.bridge_frame_cost(size)
        assert model.host_frame_cost_total(size + 1) >= model.host_frame_cost_total(size)


class TestCpuQueue:
    def test_items_serialize(self, sim):
        cpu = CpuQueue(sim, "cpu")
        done = []
        cpu.submit(1.0, lambda: done.append(sim.now))
        cpu.submit(1.0, lambda: done.append(sim.now))
        cpu.submit(0.5, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(2.5)]
        assert cpu.items_processed == 3
        assert cpu.busy_time == pytest.approx(2.5)

    def test_fifo_order(self, sim):
        cpu = CpuQueue(sim, "cpu")
        order = []
        for index in range(5):
            cpu.submit(0.1, lambda i=index: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_stall_delays_service(self, sim):
        cpu = CpuQueue(sim, "cpu")
        done = []
        cpu.stall(2.0)
        cpu.submit(0.5, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.5)]

    def test_negative_cost_clamped(self, sim):
        cpu = CpuQueue(sim, "cpu")
        done = []
        cpu.submit(-5.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.0)]

    def test_utilization(self, sim):
        cpu = CpuQueue(sim, "cpu")
        cpu.submit(1.0, lambda: None)
        sim.run_until(4.0)
        assert cpu.utilization() == pytest.approx(0.25)

    def test_max_queue_depth(self, sim):
        cpu = CpuQueue(sim, "cpu")
        for _ in range(4):
            cpu.submit(0.1, lambda: None)
        assert cpu.max_queue_depth >= 3
        sim.run()

    def test_zero_cost_run_batches_into_one_event(self, sim):
        # Back-to-back zero-cost items complete at the same timestamp as the
        # head item: one service event must cover the whole run.
        cpu = CpuQueue(sim, "cpu")
        done = []
        cpu.submit(1.0, lambda: done.append(("head", sim.now)))
        for index in range(5):
            cpu.submit(0.0, lambda i=index: done.append((i, sim.now)))
        sim.run()
        assert [name for name, _ in done] == ["head", 0, 1, 2, 3, 4]
        assert all(time == pytest.approx(1.0) for _, time in done)
        assert cpu.items_processed == 6
        assert cpu.batches_merged == 1
        # The head starts service at submit time, before the zero-cost items
        # arrive; those five are then served as ONE batch event instead of
        # five separate ones: two events total instead of six.
        assert sim.events_dispatched == 2

    def test_batching_preserves_mixed_cost_timestamps(self, sim):
        cpu = CpuQueue(sim, "cpu")
        done = []
        costs = [0.5, 0.0, 0.0, 0.25, 0.0]
        for index, cost in enumerate(costs):
            cpu.submit(cost, lambda i=index: done.append((i, sim.now)))
        sim.run()
        # Items 0-2 complete together at 0.5; items 3-4 together at 0.75.
        assert done == [
            (0, pytest.approx(0.5)),
            (1, pytest.approx(0.5)),
            (2, pytest.approx(0.5)),
            (3, pytest.approx(0.75)),
            (4, pytest.approx(0.75)),
        ]
        # Item 0 alone (service began at submit), then batch (1,2), then
        # batch (3,4): three events instead of five.
        assert sim.events_dispatched == 3
        assert cpu.batches_merged == 2
        assert cpu.busy_time == pytest.approx(0.75)

    def test_batching_respects_stall(self, sim):
        # A stall (GC pause) delays the whole batch; the cpu.stall trace
        # record plus the event count make the reduction observable.
        cpu = CpuQueue(sim, "cpu")
        done = []
        cpu.stall(2.0)
        cpu.submit(0.5, lambda: done.append(sim.now))
        cpu.submit(0.0, lambda: done.append(sim.now))
        cpu.submit(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.5)] * 3
        # Stalled head alone, then one batch for the two zero-cost riders.
        assert sim.events_dispatched == 2
        assert cpu.batches_merged == 1
        assert sim.trace.count(category="cpu.stall") == 1
        stalls = [r for r in sim.trace if r.category == "cpu.stall"]
        assert stalls[0].detail["duration"] == pytest.approx(2.0)

    def test_mid_service_stall_still_delays_batched_riders(self, sim):
        # A stall that arrives while a batch is in service (a GC pause from
        # a timer) must still delay the zero-cost riders, exactly as it
        # delayed still-queued items before batching existed.
        cpu = CpuQueue(sim, "cpu")
        done = []
        cpu.submit(1.0, lambda: done.append(("first", sim.now)))
        cpu.submit(1.0, lambda: done.append(("head", sim.now)))
        cpu.submit(0.0, lambda: done.append(("rider", sim.now)))
        sim.schedule_at(1.5, lambda: cpu.stall(5.0))
        sim.run()
        # head+rider batch when service begins at t=1.0 and would finish at
        # t=2.0; the stall at t=1.5 (until t=6.5) lets the head complete on
        # its already-scheduled event but pushes the rider behind the stall.
        assert done == [
            ("first", pytest.approx(1.0)),
            ("head", pytest.approx(2.0)),
            ("rider", pytest.approx(6.5)),
        ]
        assert cpu.items_processed == 3

    def test_stall_from_batched_callback_delays_later_riders(self, sim):
        # A callback inside the batch stalling the server pushes the
        # *remaining* riders behind the stall, as FIFO service would.
        cpu = CpuQueue(sim, "cpu")
        done = []
        cpu.submit(1.0, lambda: done.append(("head", sim.now)))

        def stalling_rider():
            done.append(("stallER", sim.now))
            cpu.stall(3.0)

        cpu.submit(0.0, stalling_rider)
        cpu.submit(0.0, lambda: done.append(("late", sim.now)))
        sim.run()
        assert done == [
            ("head", pytest.approx(1.0)),
            ("stallER", pytest.approx(1.0)),
            ("late", pytest.approx(4.0)),
        ]
        assert cpu.items_processed == 3


def _two_lan_pair(device_factory):
    builder = NetworkBuilder(seed=17)
    builder.add_segment("lan1")
    builder.add_segment("lan2")
    host1 = builder.add_host("h1", "lan1")
    host2 = builder.add_host("h2", "lan2")
    builder.populate_static_arp()
    network = builder.build()
    device = device_factory(network)
    device.add_interface("eth0", network.segment("lan1"))
    device.add_interface("eth1", network.segment("lan2"))
    return network, device, host1, host2


def _ping_works(network, host1, host2):
    replies = []
    host1.stack.add_icmp_handler(lambda m, s: replies.append(m.is_reply))
    host1.ping(host2.ip, 3, 1, b"x" * 128)
    network.sim.run_until(network.sim.now + 2.0)
    return True in replies


class TestBufferedRepeater:
    def test_forwards_between_lans(self):
        network, repeater, host1, host2 = _two_lan_pair(
            lambda net: BufferedRepeater(net.sim, "rep")
        )
        assert _ping_works(network, host1, host2)
        assert repeater.frames_repeated > 0
        assert repeater.statistics()["frames_received"] > 0

    def test_repeats_blindly_even_local_traffic(self):
        network, repeater, host1, host2 = _two_lan_pair(
            lambda net: BufferedRepeater(net.sim, "rep")
        )
        # Traffic addressed to a host on the same LAN is still copied across:
        # the repeater has no learning.
        from repro.ethernet.frame import EthernetFrame
        from repro.ethernet.mac import MacAddress

        frame = EthernetFrame(
            destination=host1.mac,
            source=MacAddress.locally_administered(500),
            ethertype=0x88B6,
            payload=b"local",
        )
        host1.send_raw_frame(frame)
        network.sim.run_until(1.0)
        assert repeater.frames_repeated >= 1

    def test_duplicate_interface_rejected(self, sim):
        repeater = BufferedRepeater(sim, "rep")
        segment = Segment(sim, "lan")
        repeater.add_interface("eth0", segment)
        from repro.exceptions import TopologyError

        with pytest.raises(TopologyError):
            repeater.add_interface("eth0", segment)


class TestStaticLearningBridge:
    def test_forwards_and_learns(self):
        network, bridge, host1, host2 = _two_lan_pair(
            lambda net: StaticLearningBridge(net.sim, "lanbridge")
        )
        assert _ping_works(network, host1, host2)
        learned = bridge.learned_ports()
        assert str(host1.mac) in learned
        assert str(host2.mac) in learned
        assert bridge.statistics()["frames_forwarded"] + bridge.statistics()["frames_flooded"] > 0

    def test_filters_local_traffic(self):
        network, bridge, host1, host2 = _two_lan_pair(
            lambda net: StaticLearningBridge(net.sim, "lanbridge")
        )
        assert _ping_works(network, host1, host2)
        from repro.ethernet.frame import EthernetFrame
        from repro.ethernet.mac import MacAddress

        frame = EthernetFrame(
            destination=host1.mac,
            source=MacAddress.locally_administered(501),
            ethertype=0x88B6,
            payload=b"stays put",
        )
        host1.send_raw_frame(frame)
        network.sim.run_until(network.sim.now + 1.0)
        assert bridge.statistics()["frames_filtered"] >= 1

    def test_is_much_faster_than_active_bridge(self):
        model = CostModel()
        assert StaticLearningBridge(NetworkBuilder(seed=1).sim, "x").frame_cost < (
            model.bridge_frame_cost(1024) / 10
        )
