"""Quickstart: build an active bridge, program it incrementally, watch it learn.

This example reproduces the core demonstration of the paper in a few dozen
lines: two Ethernet LANs joined by an *unprogrammed* active node, which is
then extended on the fly with the dumb-bridge switchlet (a buffered
repeater), the learning switchlet, and finally the 802.1D spanning-tree
switchlet — at which point it is a fully functional transparent bridge.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.measurement.ping import PingRunner
from repro.scenario import run_scenario
from repro.switchlets.packaging import (
    dumb_bridge_package,
    learning_bridge_package,
    spanning_tree_package,
)


def ping_once(network, source, destination, label):
    """Send a few echoes across the bridge and report the outcome."""
    runner = PingRunner(network.sim, source, destination.ip, payload_size=256, count=3,
                        interval=0.1, identifier=hash(label) & 0xFFFF)
    result = runner.run(start_time=network.sim.now + 0.1)
    status = f"{result.received}/{result.sent} replies"
    if result.received:
        status += f", mean RTT {result.mean_rtt_ms():.3f} ms"
    print(f"  ping ({label}): {status}")
    return result


def main() -> None:
    # --- the testbed comes from the scenario registry: two 100 Mb/s LANs,
    # --- a host on each, and an *unprogrammed* active node between them
    run = run_scenario("pair/unprogrammed", seed=1)
    network = run.network
    host1, host2 = run.host("host1"), run.host("host2")
    bridge = run.device("bridge")
    environment = bridge.environment.modules

    print("1. Unprogrammed node: the two LANs are isolated.")
    ping_once(network, host1, host2, "no switchlets")

    print("2. Load the dumb-bridge switchlet (a programmable buffered repeater).")
    bridge.load_switchlet(dumb_bridge_package(environment))
    ping_once(network, host1, host2, "dumb bridge")

    print("3. Load the learning switchlet: it replaces the switching function.")
    bridge.load_switchlet(learning_bridge_package(environment))
    ping_once(network, host1, host2, "learning bridge")
    learning = bridge.func.lookup("switchlet.learning-bridge")
    print("  learned host locations:")
    for mac, (age, port) in sorted(learning.snapshot().items()):
        print(f"    {mac} -> {port} (age {age:.3f}s)")

    print("4. Load the 802.1D spanning-tree switchlet (full bridge).")
    bridge.load_switchlet(spanning_tree_package(environment, autostart=True))
    stp = bridge.func.lookup("stp.ieee")
    print("  waiting out the listening/learning forward-delay period (2 x 15 s)...")
    network.sim.run_until(network.sim.now + 31.0)
    print(f"  port states: {stp.snapshot()['port_states']}")
    ping_once(network, host1, host2, "full bridge")

    stats = bridge.statistics()
    print("\nBridge statistics:")
    print(f"  switchlets loaded : {stats['switchlets_loaded']}")
    print(f"  frames received   : {stats['frames_received']}")
    print(f"  frames forwarded  : {stats['frames_transmitted']}")
    print(f"  CPU utilization   : {stats['cpu_utilization'] * 100:.2f}%")


if __name__ == "__main__":
    main()
