"""Relaxed execution of the sharded fabric: canonical-merge mode.

The strict :class:`~repro.sim.fabric.ShardedSimulator` dispatches in the
exact global ``(time_ns, sequence)`` order, which makes sharded runs
bit-identical to the single engine — at the price of a coordinator pass and a
batch-limit comparison on every event.  *Relaxed* mode trades that total
order for throughput while keeping a provable correctness contract:

**Execution model (conservative windows, per-shard bounds).**  Let ``T`` be
the globally earliest pending event time and ``L`` the fabric lookahead (the
minimum cross-shard handoff latency — minimum-frame wire service plus
propagation delay over cut segments, computed by the partitioner).
Every event in the window ``[T, T + L)`` can be dispatched without
inter-shard coordination: a cross-shard effect of an event at time ``t``
materializes no earlier than ``t + L`` — the classic Chandy–Misra–Bryant
clock-plus-lookahead bound.  The executor sharpens that global window into a
*per-shard* bound.  For every shard the earliest time anything can reach it
is ``min`` over the other shards of their earliest possible activity plus
``L``; for a shard that is not the sole earliest this collapses to the
classic ``T + L - 1``, while the sole earliest shard may run to
``min(T2, T + L) + L - 1`` (``T2`` the earliest top among the *other*
shards) — the feedback chain through any other shard needs at least one
lookahead hop to wake it and a second to reach back.  The ``min`` with
``T + L`` is what keeps the bound conservative across barriers: an idle
shard can be woken by this window's mail at ``T + L`` and respond one hop
later, so the leader must never outrun ``T + 2L - 1``.  Shards whose next
event lies beyond their bound are skipped outright — control-heavy
topologies (e.g. ``ring/failover``) concentrate events on one shard at a
time, and skipping turns each barrier round from ``n`` ring drains into one.
After the eligible shards drain their rings (sequentially, or on one worker
thread per shard) the executor flushes the cross-shard *mailboxes* at the
barrier.  When the shards share no cut segment (``lookahead_ns is None``)
the window is the whole run horizon and every shard free-runs.

**Mailboxes.**  During a window a shard never touches another shard's state.
Cross-shard interactions — a station transmitting on a cut segment homed
elsewhere, and a cut segment scheduling its per-shard delivery runs — are
appended to the *sending* shard's outbox (single-writer, so no locks).  At
the window barrier the coordinator merges all outboxes in the canonical
``(time_ns, sender_shard, position)`` order and applies them: transmits
replay through the segment at their recorded times, event pushes land on the
target rings.  Thread interleaving therefore cannot influence any simulation
state: relaxed runs are deterministic with and without worker threads.

**Correctness contract (canonical-merge equivalence).**  Relaxed mode does
not preserve the global emission order of trace records.  Instead, per-shard
trace streams are merged by the canonical key ``(time, shard_id, source,
shard_seq)`` — see :meth:`~repro.sim.fabric.FabricTrace.canonical_records`
for why same-instant ties of independent sources fall back to the source
name — and the contract is that the canonically merged records, all live
counters and every component statistic are identical to the strict
engine's.  The test suite proves this catalog-wide at ``shards=1,2,4``.

**Worker threads.**  ``workers > 0`` dispatches each window's shards on a
persistent thread pool.  On a free-threaded CPython build this parallelizes
the windows across cores; on a GIL build threads only add synchronization
overhead, so the benchmarked pick (see ``bench_sharded_fabric.py``) is the
sequential executor, whose win comes from the lean per-shard window loop and
the segment express lanes (:meth:`~repro.lan.segment.Segment._express_pump`).
Either way the mailbox discipline keeps results identical.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.exceptions import SimulationError
from repro.sim.clock import NANOSECONDS_PER_SECOND

#: The fabric's synchronization modes — the single source of truth consumed
#: by :class:`~repro.sim.fabric.ShardedSimulator` and the scenario layer's
#: :class:`~repro.scenario.spec.PartitionSpec`.
SYNC_MODES = ("strict", "relaxed")

#: Relaxed-window execution backends.  ``"thread"`` runs windows in-process
#: (sequentially or on a worker-thread pool — see :class:`RelaxedExecutor`);
#: ``"process"`` runs one worker process per shard for wall-clock multi-core
#: speedup (see :mod:`repro.sim.procpool`).  Ignored under strict sync.
BACKENDS = ("thread", "process")

#: Thread-local "which shard is executing on this thread" marker.  Set by
#: :meth:`EngineShard._run_window` for the duration of a relaxed window; the
#: segment layer reads it to route cross-shard interactions into the correct
#: outbox (and to recognize the window context at all — outside a relaxed
#: window the classic direct paths are single-threaded and safe).
_ACTIVE = threading.local()


def active_shard():
    """The shard whose relaxed window is executing on this thread, if any."""
    return getattr(_ACTIVE, "shard", None)


class RelaxedExecutor:
    """Drives a :class:`ShardedSimulator`'s shards through relaxed windows.

    Args:
        fabric: the owning :class:`~repro.sim.fabric.ShardedSimulator`.
        workers: worker threads for window execution; ``0`` (the default)
            runs every window inline on the calling thread.
    """

    def __init__(self, fabric, workers: int = 0) -> None:
        if workers < 0:
            raise SimulationError("relaxed workers cannot be negative")
        self.fabric = fabric
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        #: Windows executed by the last dispatch (diagnostics/benchmarks).
        self.windows = 0
        #: Mailbox entries flushed by the last dispatch.
        self.mail_flushed = 0
        #: Telemetry state while a telemetry-on dispatch is in flight
        #: (consulted by :meth:`_flush_mail`); ``None`` otherwise.
        self._tele = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(self, until_ns: int, max_events: Optional[int] = None) -> int:
        """Run every pending event with ``time_ns <= until_ns`` (relaxed).

        With ``max_events`` the executor degrades to sequential windows so
        the budget is consumed in canonical shard order; budgeted stepping is
        a debugging affordance, not the hot path.
        """
        fabric = self.fabric
        shards = fabric._shards
        lookahead = fabric.lookahead_ns
        shared_clock = fabric.clock
        self._ensure_pool()
        for shard in shards:
            shard._enter_relaxed(shared_clock, until_ns)
        self.windows = 0
        self.mail_flushed = 0
        control = fabric._control
        control_times = control._times
        dispatched = 0
        last_pump = None
        # Cached shard tops.  During a window only three queues can change:
        # the running shard's own ring (direct scheduling), the control ring
        # (facade scheduling), and the outboxes (cut-segment mail, applied at
        # the barrier flush) — so after a flush-free fast-path round only the
        # leader's cached top needs refreshing; everything else is refreshed
        # wholesale after a mail flush or control barrier.  The peek reads
        # the raw bucket heap instead of ``top_key``: a head made entirely of
        # cancelled events can only make a top look *earlier* than it really
        # is, and an earlier top merely tightens the window bounds — still
        # sound — while the granted drain physically discards the dead
        # entries, so progress is guaranteed.
        n_shards = len(shards)
        shard_range = range(n_shards)
        tops = [None] * n_shards
        refresh_all = True
        # Telemetry is guarded per window *round*, never per event: with it
        # off, this dispatch performs no perf_counter calls at all; with it
        # on, each round pays a handful of checks plus one queue-depth scan.
        telemetry = fabric._telemetry
        timer = None
        if telemetry is not None:
            from repro.telemetry.spans import PhaseTimer

            registry = telemetry.registry
            timer = PhaseTimer()
            win_hist = registry.histogram("window_events")
            sole_counter = registry.counter("fabric_sole_leader_extensions_total")
            barrier_counter = registry.counter("fabric_control_barriers_total")
            queue_high = 0
            self._tele = telemetry
        try:
            while True:
                if refresh_all:
                    for index in shard_range:
                        st = shards[index]._queue._times
                        tops[index] = st[0] if st else None
                    refresh_all = False
                # One pass over the cached tops yields everything the window
                # plan needs: the global minimum ``t_min``, the runner-up
                # ``t_second`` among the *other* shards, whether the minimum
                # is tied, and which shard leads.
                t_min = None
                t_second = None
                leader_index = -1
                tied = False
                for index in shard_range:
                    top = tops[index]
                    if top is None:
                        continue
                    if t_min is None or top < t_min:
                        t_second = t_min
                        t_min = top
                        leader_index = index
                        tied = False
                    elif top == t_min:
                        tied = True
                        t_second = top
                    elif t_second is None or top < t_second:
                        t_second = top
                # Raw control peek: a stale (all-cancelled) head triggers a
                # no-op barrier whose ``_run_control`` discards the dead
                # entries — one wasted round, never a wrong one.
                control_t = control_times[0] if control_times else None
                budget = None if max_events is None else max_events - dispatched
                if budget is not None and budget <= 0:
                    break
                if timer is not None:
                    pending = 0
                    for shard in shards:
                        pending += len(shard._queue)
                    if pending > queue_high:
                        queue_high = pending
                if control_t is not None and control_t <= until_ns and (
                    t_min is None or control_t <= t_min
                ):
                    # No shard event strictly before the next control event:
                    # run the control barrier.  Every shard clock is set to
                    # the control time first, because driver callbacks may
                    # synchronously touch components on any shard.
                    if timer is not None:
                        timer.lap("plan")
                    dispatched += self._run_control(control_t, budget)
                    # Barrier callbacks use the direct (non-outbox) paths, so
                    # mail is rare here; skip the flush when every box is
                    # empty.  The full top refresh stays: control callbacks
                    # schedule straight onto their components' home rings.
                    for shard in shards:
                        if shard.outbox:
                            self._flush_mail(shards)
                            break
                    if timer is not None:
                        barrier_counter.inc()
                        timer.lap("barrier")
                    refresh_all = True
                    continue
                if t_min is None or t_min > until_ns:
                    break
                # Express pumps may legally run past the window end (their
                # chains are segment-local) but never past the run horizon
                # or a pending control event, whose callback may observe or
                # mutate anything.
                pump_bound = until_ns
                if control_t is not None and control_t - 1 < pump_bound:
                    pump_bound = control_t - 1
                if pump_bound != last_pump:
                    last_pump = pump_bound
                    for shard in shards:
                        shard._until_ns = pump_bound
                self.windows += 1
                if lookahead is not None:
                    base_bound = t_min + lookahead - 1
                    if base_bound > pump_bound:
                        base_bound = pump_bound
                    if (
                        budget is None
                        and not tied
                        and (t_second is None or t_second > base_bound)
                    ):
                        # Fast path: the leader is the sole eligible shard —
                        # every other top (the earliest is ``t_second``) lies
                        # beyond the classic window (control-heavy topologies
                        # live here).  While the leader generates no mail the
                        # other shards' tops are provably static, so the
                        # drain extends its own window in place (see
                        # ``extend`` in :meth:`EngineShard._run_window`) —
                        # no rescan, no plan, no flush per window.  The
                        # leader's first bound adds the feedback protection:
                        # no other shard can act before ``min(its own top,
                        # t_min + L)`` — an idle shard must first be woken by
                        # the leader's mail — and its reaction needs one more
                        # lookahead hop to reach back.
                        other = t_min + lookahead
                        if t_second is not None and t_second < other:
                            other = t_second
                        lead_bound = other + lookahead - 1
                        if lead_bound > pump_bound:
                            lead_bound = pump_bound
                        leader = shards[leader_index]
                        if timer is not None:
                            timer.lap("plan")
                            round_base = dispatched
                        dispatched += leader._run_window(
                            lead_bound,
                            None,
                            (t_second, lookahead, control, pump_bound),
                        )
                        if timer is not None:
                            wall = timer.lap("compute")
                            sole_counter.inc()
                            win_hist.observe(dispatched - round_base)
                            telemetry.flight.record(
                                leader_index, "win", (t_min, lead_bound), wall
                            )
                        if leader.outbox:
                            self._flush_mail(shards)
                            refresh_all = True
                            if timer is not None:
                                timer.lap("barrier")
                        else:
                            st = leader._queue._times
                            tops[leader_index] = st[0] if st else None
                        continue
                    if tied:
                        # Two shards share the earliest top: nobody outruns
                        # the classic global window.
                        lead_bound = base_bound
                    else:
                        # Sole leader with a reachable runner-up: same
                        # feedback-protected bound as the fast path.
                        other = t_min + lookahead
                        if t_second is not None and t_second < other:
                            other = t_second
                        lead_bound = other + lookahead - 1
                        if lead_bound > pump_bound:
                            lead_bound = pump_bound
                    if self._pool is None and budget is None:
                        # Sequential slow path, inlined: run each eligible
                        # shard as the scan finds it and refresh its cached
                        # top in the same breath — no plan list at all.
                        if timer is not None:
                            timer.lap("plan")
                            round_base = dispatched
                        for index in shard_range:
                            top = tops[index]
                            if top is None:
                                continue
                            bound = (
                                lead_bound
                                if index == leader_index
                                else base_bound
                            )
                            if top > bound:
                                # Nothing inside this shard's bound; skip the
                                # ring drain (and its clock churn) entirely.
                                continue
                            shard = shards[index]
                            dispatched += shard._run_window(bound)
                            st = shard._queue._times
                            tops[index] = st[0] if st else None
                        if timer is not None:
                            wall = timer.lap("compute")
                            win_hist.observe(dispatched - round_base)
                            telemetry.flight.record(
                                leader_index, "win", (t_min, lead_bound), wall
                            )
                        for shard in shards:
                            if shard.outbox:
                                self._flush_mail(shards)
                                refresh_all = True
                                break
                        if timer is not None:
                            timer.lap("barrier")
                        continue
                    plan = []
                    for index in shard_range:
                        top = tops[index]
                        if top is None:
                            continue
                        bound = lead_bound if index == leader_index else base_bound
                        if top > bound:
                            continue
                        plan.append((shards[index], bound))
                else:
                    plan = [
                        (shard, pump_bound)
                        for shard in shards
                        if shard._queue._times
                    ]
                if timer is not None:
                    timer.lap("plan")
                    round_base = dispatched
                if self._pool is not None and budget is None:
                    dispatched += self._run_window_threaded(plan)
                else:
                    for shard, bound in plan:
                        remaining = (
                            None if budget is None else budget - dispatched
                        )
                        if remaining is not None and remaining <= 0:
                            break
                        dispatched += shard._run_window(bound, remaining)
                if timer is not None:
                    wall = timer.lap("compute")
                    win_hist.observe(dispatched - round_base)
                    telemetry.flight.record(
                        max(leader_index, 0), "win", (t_min, pump_bound), wall
                    )
                # Only the planned shards' rings changed unless they mailed:
                # refresh just those tops and skip the flush (and the full
                # rescan it forces) on mail-free rounds.
                mailed = False
                for shard in shards:
                    if shard.outbox:
                        mailed = True
                        break
                if mailed:
                    self._flush_mail(shards)
                    refresh_all = True
                else:
                    for shard, _ in plan:
                        st = shard._queue._times
                        tops[shard.index] = st[0] if st else None
                if timer is not None:
                    timer.lap("barrier")
                if max_events is not None and dispatched >= max_events:
                    break
        finally:
            top_ns = shared_clock._now_ns
            for shard in shards:
                if shard.cursor_ns > top_ns:
                    top_ns = shard.cursor_ns
                shard._exit_relaxed(shared_clock)
            if top_ns > shared_clock._now_ns:
                shared_clock._now_ns = top_ns
                shared_clock._now_s = top_ns / NANOSECONDS_PER_SECOND
            if timer is not None:
                self._tele = None
                timer.finish(telemetry.profiler)
                telemetry.profiler.windows += self.windows
                registry.counter("fabric_windows_total").inc(self.windows)
                registry.counter("engine_events_dispatched").inc(dispatched)
                registry.gauge("engine_queue_high_water").set_max(queue_high)
        return dispatched

    def _run_control(self, time_ns: int, budget: Optional[int]) -> int:
        """Run every control-ring event at ``time_ns`` (a global barrier).

        All shard clocks (and the shared clock) are synchronized to the
        control time so a driver callback sees a globally consistent present
        no matter which shard's components it drives — exactly the view the
        strict engine would give it.
        """
        fabric = self.fabric
        control = fabric._control
        seconds = time_ns / NANOSECONDS_PER_SECOND
        for shard in fabric._shards:
            clock = shard.clock
            clock._now_ns = time_ns
            clock._now_s = seconds
            if time_ns > shard.cursor_ns:
                shard.cursor_ns = time_ns
        shared = fabric.clock
        shared._now_ns = time_ns
        shared._now_s = seconds
        n = 0
        while True:
            if budget is not None and n >= budget:
                break
            key = control.top_key()
            if key is None or key[0] != time_ns:
                break
            entry = control.pop()
            entry[1]()
            n += 1
        fabric._control_dispatched += n
        return n

    def _run_window_threaded(self, plan) -> int:
        pool = self._pool
        futures = [pool.submit(shard._run_window, bound) for shard, bound in plan]
        return sum(future.result() for future in futures)

    # ------------------------------------------------------------------
    # Barrier: canonical mailbox flush
    # ------------------------------------------------------------------

    def _flush_mail(self, shards) -> int:
        """Apply every outbox entry in ``(time, sender shard, position)`` order.

        Entry shapes (appended by the segment layer during windows):

        * ``("push", when_ns, target_shard, callback)`` — schedule a
          fire-and-forget event on another shard's ring (cut-segment
          delivery runs);
        * ``("tx", when_ns, segment, sender_nic, frame)`` — a transmit on a
          cut segment, replayed through
          :meth:`Segment._apply_relaxed_transmit` at its recorded time;
        * ``("drop", when_ns, segment)`` — one sender-side frame loss on a
          failed cut segment (``frames_lost`` bookkeeping deferred to the
          barrier; the drop record was already emitted on the sender's
          stream at send time).

        The sort key makes the merge independent of thread scheduling, which
        is what keeps threaded relaxed runs deterministic.
        """
        entries = None
        single = None
        single_index = -1
        for shard in shards:
            outbox = shard.outbox
            if not outbox:
                continue
            if entries is None and single is None and len(outbox) == 1:
                # The overwhelmingly common flush carries exactly one entry
                # (one frame crossed one cut): no decoration, no sort.
                single = outbox[0]
                single_index = shard.index
                outbox.clear()
                continue
            if entries is None:
                entries = []
                if single is not None:
                    # A second box turned up; fall back to the sorted merge.
                    entries.append((single[1], single_index, 0, single))
                    single = None
            index = shard.index
            entries.extend(
                (entry[1], index, position, entry)
                for position, entry in enumerate(outbox)
            )
            outbox.clear()
        if single is not None:
            kind = single[0]
            when_ns = single[1]
            if kind == "push":
                single[2]._relaxed_push_fire(when_ns, single[3])
            elif kind == "drop":
                single[2].frames_lost += 1
            else:
                single[2]._apply_relaxed_transmit(when_ns, single[3], single[4])
            self.mail_flushed += 1
            if self._tele is not None:
                self._count_mail((single,))
            return 1
        if not entries:
            return 0
        # No sort key: ``(when, shard index, position)`` is unique, so the
        # trailing entry payload is never compared.
        entries.sort()
        for when_ns, _, _, entry in entries:
            kind = entry[0]
            if kind == "push":
                # The target may be an EngineShard ring or the fabric facade
                # itself (a facade-homed monitoring NIC on a cut segment);
                # _relaxed_push_fire resolves to the right ring.
                entry[2]._relaxed_push_fire(when_ns, entry[3])
            elif kind == "drop":
                entry[2].frames_lost += 1
            else:
                entry[2]._apply_relaxed_transmit(when_ns, entry[3], entry[4])
        self.mail_flushed += len(entries)
        if self._tele is not None:
            self._count_mail(item[3] for item in entries)
        return len(entries)

    def _count_mail(self, raw_entries) -> None:
        """Fold flushed mailbox entries into the telemetry registry.

        Only ``tx`` entries carry an identifiable frame; ``push`` entries
        (pre-bound delivery runs) and ``drop`` markers count toward the
        entry total alone.
        """
        registry = self._tele.registry
        n = 0
        for entry in raw_entries:
            n += 1
            if entry[0] == "tx":
                segment = entry[2]
                registry.counter(
                    "fabric_mail_frames_total", segment=segment.name
                ).inc()
                registry.counter(
                    "fabric_mail_bytes_total", segment=segment.name
                ).inc(entry[4].wire_length)
        registry.counter("fabric_mail_entries_total").inc(n)

    # ------------------------------------------------------------------
    # Worker pool lifecycle
    # ------------------------------------------------------------------

    def set_workers(self, workers: int) -> None:
        """Resize the worker pool (``0`` returns to sequential windows)."""
        if workers < 0:
            raise SimulationError("relaxed workers cannot be negative")
        if workers == self.workers and (workers == 0) == (self._pool is None):
            return
        self.close()
        self.workers = workers

    def _ensure_pool(self) -> None:
        if self.workers > 0 and self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="relaxed-shard"
            )

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
