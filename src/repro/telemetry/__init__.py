"""Fabric telemetry: deterministic metrics, wall-clock spans, post-mortems.

Two strictly separated signal families:

* **Deterministic metrics** (:mod:`.metrics`) — counters, gauges and
  fixed-bucket histograms derived purely from the simulated event stream.
  Identical across runs and engine modes by construction; never read by
  the simulation, so enabling them cannot change an outcome.
* **Out-of-band wall-clock spans** (:mod:`.spans`, :mod:`.flight`) —
  phase timers, span profiles and the bounded flight recorder.  Wall time
  never touches simulated state; the overhead contract is that the
  default-off hot path performs no ``perf_counter`` calls at all.

Telemetry is **off by default**.  ``Simulator.enable_telemetry()`` /
``ShardedSimulator.enable_telemetry()`` (or ``telemetry=True`` on
``run_scenario``/``compile_spec``) attach a :class:`Telemetry` state object
to the engine; the executors check for it once per window round, not per
event.  ``ScenarioRun.report()`` folds everything into a structured
:class:`~repro.telemetry.report.RunReport`.
"""

from __future__ import annotations

from typing import Dict, Optional

from .flight import FlightRecorder
from .metrics import (
    METRIC_FAMILIES,
    WINDOW_EVENT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import RunReport, build_report, snapshot_segment
from .spans import PHASES, PhaseTimer, SpanProfiler

__all__ = [
    "METRIC_FAMILIES",
    "PHASES",
    "WINDOW_EVENT_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "RunReport",
    "SpanProfiler",
    "Telemetry",
    "build_report",
    "snapshot_segment",
]


class Telemetry:
    """Per-engine telemetry state: registry + profiler + shipped extras.

    One instance hangs off a :class:`Simulator` or :class:`ShardedSimulator`
    as ``_telemetry`` (``None`` when telemetry is off — the only thing the
    hot paths ever test).  For a sharded fabric this is the fabric-wide
    aggregate; process-backend workers run their own instance and ship a
    snapshot home with their trace suffixes, merged in via
    :meth:`absorb_worker`.
    """

    def __init__(self, shards: int = 1, flight_limit: int = 16) -> None:
        self.registry = MetricsRegistry()
        self.profiler = SpanProfiler()
        self.flight = FlightRecorder(shards, limit=flight_limit)
        #: Segment statistics shipped from process-backend workers, keyed by
        #: segment name — authoritative after a process dispatch, when the
        #: parent's own Segment objects only saw replicated barrier work.
        self.shipped_segments: Dict[str, dict] = {}

    def absorb_worker(self, shard_index: int, blob: Optional[dict]) -> None:
        """Merge one worker's shipped telemetry blob into the aggregate."""
        if not blob:
            return
        snapshot = blob.get("metrics")
        if snapshot:
            self.registry.merge_snapshot(snapshot)
        compute_s = blob.get("compute_s")
        if compute_s:
            self.profiler.add("worker_compute", compute_s)
        for name, stats in (blob.get("segments") or {}).items():
            self.shipped_segments[name] = stats
