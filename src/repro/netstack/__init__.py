"""Minimal protocol stack used as the network loading path.

The paper's network loader "consists of four layers": an Ethernet
demultiplexer, "a minimal IP sufficient for our purposes (it does not, for
example, implement fragmentation)", a minimal UDP, and a TFTP server that
accepts binary write requests whose payload is a byte-code module to load
(Section 5.2).  This package implements exactly that stack, plus ICMP echo
(the paper measures latency with ``ping``) and a small ARP helper so hosts
can resolve each other without manual tables.

All wire formats round-trip (``encode``/``decode``) and carry their checksums
so that corrupted packets can be injected and must be rejected.
"""

from repro.netstack.checksum import internet_checksum
from repro.netstack.ip import IPv4Address, IPv4Packet, IpProtocol
from repro.netstack.udp import UdpDatagram
from repro.netstack.icmp import IcmpMessage, IcmpType
from repro.netstack.arp import ArpPacket, ArpOperation
from repro.netstack.tftp import (
    TftpOpcode,
    TftpWriteRequest,
    TftpData,
    TftpAck,
    TftpError,
    TftpServer,
    TftpClient,
    decode_tftp,
)
from repro.netstack.stack import EthernetDemux, HostStack

__all__ = [
    "internet_checksum",
    "IPv4Address",
    "IPv4Packet",
    "IpProtocol",
    "UdpDatagram",
    "IcmpMessage",
    "IcmpType",
    "ArpPacket",
    "ArpOperation",
    "TftpOpcode",
    "TftpWriteRequest",
    "TftpData",
    "TftpAck",
    "TftpError",
    "TftpServer",
    "TftpClient",
    "decode_tftp",
    "EthernetDemux",
    "HostStack",
]
