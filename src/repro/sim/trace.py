"""Event tracing: a dispatch hub with pluggable sinks.

Every component in the reproduction can emit structured records into the
simulator's :class:`TraceRecorder`.  The measurement tools (ping, ttcp, the
agility probe) and the protocol-transition benchmark (Table 1) are built on
top of this trace, which keeps measurement completely decoupled from the
components being measured — the same property the paper gets from
instrumenting its bridge externally with ``ping``/``ttcp``.

The recorder itself is only a *hub*: it stamps records with simulated time,
applies global and per-category gating, and dispatches to composable sinks:

* :class:`ListSink` — keeps every record, with per-category and per-source
  indexes so :meth:`TraceRecorder.filter` / :meth:`TraceRecorder.last` cost
  O(matches) instead of O(all records).  One is installed by default.
* :class:`RingBufferSink` — keeps only the newest ``capacity`` records, for
  long (million-frame) runs that must not grow without bound.
* :class:`CountingSink` — O(1)-memory per-category / per-source counters.
  The hub always maintains one internally (:attr:`TraceRecorder.counters`),
  which is what makes :meth:`TraceRecorder.count` O(1) and lets measurement
  tools subscribe to live counters instead of re-scanning the trace.
* :class:`NullSink` — discards everything (benchmarking floor).

Record *details* are rendered lazily: producers on the frame hot path pass a
zero-argument callable instead of an eager dict, and the expensive rendering
(``frame.describe()`` strings and the like) only happens if some consumer
actually reads :attr:`TraceRecord.detail`.  Producers guard even the callable
allocation with :meth:`TraceRecorder.wants`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.sim.clock import Clock

#: What producers may pass as a record's detail: nothing, an eager mapping,
#: or a zero-argument callable returning one (rendered on first access).
DetailSource = Union[None, Dict[str, Any], Callable[[], Dict[str, Any]]]


class TraceRecord:
    """A single trace record.

    Attributes:
        time: simulated time (seconds) the record was emitted.
        source: name of the component that emitted the record
            (e.g. ``"bridge1"``, ``"host-a"``, ``"control-switchlet"``).
        category: machine-readable record category
            (e.g. ``"frame.rx"``, ``"stp.state"``, ``"transition"``).
        detail: free-form key/value payload.  May be produced lazily: when
            the producer supplied a callable it runs on first access and the
            result is cached, so untouched hot-path records never pay for
            rendering.
        seq: global emission sequence number, stamped by the sharded fabric's
            per-shard recorders so per-shard streams merge back into the
            exact single-engine emission order; ``None`` on records emitted
            by a plain (unsharded) recorder.  Deliberately ignored by
            equality: a sharded and an unsharded run compare record-for-record
            even though only one of them carries merge keys.
    """

    __slots__ = ("time", "source", "category", "_detail", "seq")

    def __init__(
        self,
        time: float,
        source: str,
        category: str,
        detail: DetailSource = None,
        seq: Optional[int] = None,
    ) -> None:
        self.time = time
        self.source = source
        self.category = category
        self._detail = detail
        self.seq = seq

    @property
    def detail(self) -> Dict[str, Any]:
        """The record's payload, rendering (and caching) it if it was lazy."""
        payload = self._detail
        if payload is None:
            payload = {}
            self._detail = payload
        elif callable(payload):
            payload = dict(payload())
            self._detail = payload
        return payload

    @property
    def detail_is_rendered(self) -> bool:
        """Whether the payload has been rendered yet (diagnostics/tests)."""
        return not callable(self._detail)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.source == other.source
            and self.category == other.category
            and self.detail == other.detail
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecord(time={self.time!r}, source={self.source!r}, "
            f"category={self.category!r}, detail={self.detail!r})"
        )


def match_records(
    records: Iterable[TraceRecord],
    category: Optional[str] = None,
    source: Optional[str] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> List[TraceRecord]:
    """Records matching every provided criterion, preserving input order.

    The shared predicate behind :meth:`TraceRecorder.filter` and the sharded
    fabric's stream queries.
    """
    selected = []
    for entry in records:
        if category is not None and entry.category != category:
            continue
        if source is not None and entry.source != source:
            continue
        if since is not None and entry.time < since:
            continue
        if until is not None and entry.time > until:
            continue
        selected.append(entry)
    return selected


def last_match(
    records: "List[TraceRecord]",
    category: Optional[str] = None,
    source: Optional[str] = None,
) -> Optional[TraceRecord]:
    """The most recent record matching the criteria, if any."""
    for entry in reversed(records):
        if category is not None and entry.category != category:
            continue
        if source is not None and entry.source != source:
            continue
        return entry
    return None


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class TraceSink:
    """Base class for trace sinks.  Subclasses implement :meth:`accept`."""

    def accept(self, record: TraceRecord) -> None:
        """Receive one record (called synchronously by the hub)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop any retained state (records, counters)."""


class NullSink(TraceSink):
    """Discards every record; the floor for trace-overhead benchmarks."""

    def accept(self, record: TraceRecord) -> None:
        pass


def _count_pairs(
    pairs: Dict[Tuple[str, str], int],
    category: Optional[str],
    source: Optional[str],
) -> int:
    """Count matching records in a (category, source) -> n pair table."""
    if category is not None and source is not None:
        return pairs.get((category, source), 0)
    if category is None and source is None:
        return sum(pairs.values())
    if source is None:
        return sum(n for (c, _s), n in pairs.items() if c == category)
    return sum(n for (_c, s), n in pairs.items() if s == source)


class CountingSink(TraceSink):
    """Live counters in O(distinct (category, source) pairs) memory.

    The accept path maintains a single pair table (one dict update per
    record); the aggregate views (:attr:`total`, :attr:`by_category`,
    :attr:`by_source`) are derived on read, which costs O(pairs) — pairs
    number in the dozens, so queries are effectively O(1) while the hot path
    pays the bare minimum.
    """

    def __init__(self) -> None:
        self.by_category_source: Dict[Tuple[str, str], int] = {}

    def accept(self, record: TraceRecord) -> None:
        pair = (record.category, record.source)
        by_pair = self.by_category_source
        by_pair[pair] = by_pair.get(pair, 0) + 1

    @property
    def total(self) -> int:
        """Total records seen."""
        return sum(self.by_category_source.values())

    @property
    def by_category(self) -> Dict[str, int]:
        """Per-category totals (derived; a fresh dict each access)."""
        out: Dict[str, int] = {}
        for (category, _source), n in self.by_category_source.items():
            out[category] = out.get(category, 0) + n
        return out

    @property
    def by_source(self) -> Dict[str, int]:
        """Per-source totals (derived; a fresh dict each access)."""
        out: Dict[str, int] = {}
        for (_category, source), n in self.by_category_source.items():
            out[source] = out.get(source, 0) + n
        return out

    def count(self, category: Optional[str] = None, source: Optional[str] = None) -> int:
        """Number of records seen matching the criteria."""
        return _count_pairs(self.by_category_source, category, source)

    def snapshot(self) -> Dict[str, int]:
        """A copy of the per-category counters (for reports)."""
        return self.by_category

    def clear(self) -> None:
        self.by_category_source.clear()


class CounterWindow:
    """Deltas of a hub's live counters over a measurement window.

    Measurement tools open a window when a trial starts and read counter
    deltas when it ends — O(1) per query, no re-scan of the record list, and
    it works even when only a :class:`NullSink` or :class:`RingBufferSink` is
    installed (the hub's internal :class:`CountingSink` is always live).
    """

    def __init__(self, recorder: "TraceRecorder") -> None:
        self._recorder = recorder
        self._start_pairs = dict(recorder.counters.by_category_source)

    def count(self, category: Optional[str] = None, source: Optional[str] = None) -> int:
        """Records captured since the window opened, matching the criteria."""
        now = _count_pairs(
            self._recorder.counters.by_category_source, category, source
        )
        return now - _count_pairs(self._start_pairs, category, source)


class ListSink(TraceSink):
    """Keeps every record, indexed by category and by source.

    The indexes make :meth:`filter`, :meth:`count` and :meth:`last` cost
    O(matching records) rather than O(all records): single-criterion queries
    walk only the matching index list, and two-criterion queries walk the
    shorter of the two.
    """

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        self._by_category: Dict[str, List[TraceRecord]] = {}
        self._by_source: Dict[str, List[TraceRecord]] = {}
        self._indexed_upto = 0

    def accept(self, record: TraceRecord) -> None:
        # One list append on the hot path; the indexes catch up lazily on
        # the next query (queries happen between runs, not per frame).
        self._records.append(record)

    def _refresh_index(self) -> None:
        records = self._records
        upto = self._indexed_upto
        total = len(records)
        if upto == total:
            return
        by_category = self._by_category
        by_source = self._by_source
        for index in range(upto, total):
            record = records[index]
            bucket = by_category.get(record.category)
            if bucket is None:
                bucket = by_category[record.category] = []
            bucket.append(record)
            bucket = by_source.get(record.source)
            if bucket is None:
                bucket = by_source[record.source] = []
            bucket.append(record)
        self._indexed_upto = total

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """The retained records, oldest first (a copy)."""
        return list(self._records)

    def _candidates(
        self, category: Optional[str], source: Optional[str]
    ) -> List[TraceRecord]:
        """The smallest index list guaranteed to contain every match."""
        self._refresh_index()
        if category is not None and source is not None:
            by_category = self._by_category.get(category, [])
            by_source = self._by_source.get(source, [])
            return by_category if len(by_category) <= len(by_source) else by_source
        if category is not None:
            return self._by_category.get(category, [])
        if source is not None:
            return self._by_source.get(source, [])
        return self._records

    def filter(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Return records matching every provided criterion."""
        selected = []
        for entry in self._candidates(category, source):
            if category is not None and entry.category != category:
                continue
            if source is not None and entry.source != source:
                continue
            if since is not None and entry.time < since:
                continue
            if until is not None and entry.time > until:
                continue
            selected.append(entry)
        return selected

    def count(self, category: Optional[str] = None, source: Optional[str] = None) -> int:
        """Number of retained records matching the criteria."""
        if category is None and source is None:
            return len(self._records)
        self._refresh_index()
        if source is None:
            return len(self._by_category.get(category, []))
        if category is None:
            return len(self._by_source.get(source, []))
        return len(self.filter(category=category, source=source))

    def last(
        self, category: Optional[str] = None, source: Optional[str] = None
    ) -> Optional[TraceRecord]:
        """The most recent record matching the criteria, if any."""
        for entry in reversed(self._candidates(category, source)):
            if category is not None and entry.category != category:
                continue
            if source is not None and entry.source != source:
                continue
            return entry
        return None

    def clear(self) -> None:
        self._records.clear()
        self._by_category.clear()
        self._by_source.clear()
        self._indexed_upto = 0


class RingBufferSink(TraceSink):
    """Keeps only the newest ``capacity`` records (bounded memory).

    Queries scan the retained window, which is bounded by ``capacity``;
    :attr:`evicted` counts records that have fallen off the old end.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = int(capacity)
        self._records: deque = deque(maxlen=self.capacity)
        self.evicted = 0

    def accept(self, record: TraceRecord) -> None:
        if len(self._records) == self.capacity:
            self.evicted += 1
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """The retained records, oldest first (a copy)."""
        return list(self._records)

    def filter(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Records in the retained window matching every provided criterion."""
        selected = []
        for entry in self._records:
            if category is not None and entry.category != category:
                continue
            if source is not None and entry.source != source:
                continue
            if since is not None and entry.time < since:
                continue
            if until is not None and entry.time > until:
                continue
            selected.append(entry)
        return selected

    def count(self, category: Optional[str] = None, source: Optional[str] = None) -> int:
        """Number of retained records matching the criteria."""
        if category is None and source is None:
            return len(self._records)
        return len(self.filter(category=category, source=source))

    def last(
        self, category: Optional[str] = None, source: Optional[str] = None
    ) -> Optional[TraceRecord]:
        """The most recent retained record matching the criteria, if any."""
        for entry in reversed(self._records):
            if category is not None and entry.category != category:
                continue
            if source is not None and entry.source != source:
                continue
            return entry
        return None

    def clear(self) -> None:
        self._records.clear()
        self.evicted = 0


# ---------------------------------------------------------------------------
# The hub
# ---------------------------------------------------------------------------


class TraceRecorder:
    """The trace hub: stamps, gates and dispatches records to sinks.

    Args:
        clock: the simulated clock used to timestamp records.
        sinks: initial sinks; defaults to a single :class:`ListSink`, which
            preserves the historical "append-only, filterable list" API
            (iteration, :meth:`filter`, :meth:`last`).

    Queries (:meth:`filter`, :meth:`last`, iteration) are served by the first
    queryable sink (:class:`ListSink` or :class:`RingBufferSink`);
    :meth:`count` and :meth:`__len__` are served by the always-on internal
    :class:`CountingSink` (:attr:`counters`) and are therefore O(1) and
    independent of which sinks are installed.
    """

    def __init__(self, clock: Clock, sinks: Optional[Iterable[TraceSink]] = None) -> None:
        self._clock = clock
        self._enabled = True
        self._listeners: List[Callable[[TraceRecord], None]] = []
        self._disabled_categories: set = set()
        self.counters = CountingSink()
        self._sinks: List[TraceSink] = list(sinks) if sinks is not None else [ListSink()]
        self._primary: Optional[TraceSink] = None
        self._refresh_primary()

    # ------------------------------------------------------------------
    # Sink management
    # ------------------------------------------------------------------

    def _refresh_primary(self) -> None:
        self._primary = next(
            (sink for sink in self._sinks if hasattr(sink, "filter")), None
        )

    @property
    def sinks(self) -> Tuple[TraceSink, ...]:
        """The installed sinks, in dispatch order."""
        return tuple(self._sinks)

    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Install an additional sink and return it."""
        self._sinks.append(sink)
        self._refresh_primary()
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        """Uninstall a sink (no-op if it is not installed)."""
        if sink in self._sinks:
            self._sinks.remove(sink)
            self._refresh_primary()

    def set_sinks(self, sinks: Iterable[TraceSink]) -> None:
        """Replace the installed sinks wholesale."""
        self._sinks = list(sinks)
        self._refresh_primary()

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether records are currently being captured."""
        return self._enabled

    def disable(self) -> None:
        """Stop capturing records (sinks and listeners stop firing)."""
        self._enabled = False

    def enable(self) -> None:
        """Resume capturing records."""
        self._enabled = True

    def disable_category(self, category: str) -> None:
        """Suppress one category: neither sinks nor listeners see it."""
        self._disabled_categories.add(category)

    def enable_category(self, category: str) -> None:
        """Re-enable a previously disabled category."""
        self._disabled_categories.discard(category)

    @property
    def disabled_categories(self) -> frozenset:
        """The categories currently gated off."""
        return frozenset(self._disabled_categories)

    def wants(self, category: str) -> bool:
        """Whether a record in ``category`` would currently be captured.

        Hot-path producers call this before allocating even the lazy detail
        closure, so a gated category costs one set lookup per record.
        """
        return self._enabled and category not in self._disabled_categories

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked synchronously for every new record."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Unregister a listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def emit(
        self, source: str, category: str, detail: DetailSource = None
    ) -> Optional[TraceRecord]:
        """Dispatch a record stamped with the current simulated time.

        ``detail`` may be an eager dict or a zero-argument callable rendered
        only when some consumer reads :attr:`TraceRecord.detail`.
        """
        if not self._enabled or category in self._disabled_categories:
            return None
        entry = TraceRecord(self._clock.now, source, category, detail)
        # Inline the internal counter update: this runs for every record and
        # a method call per record is measurable on the frame hot path.
        pair = (category, source)
        by_pair = self.counters.by_category_source
        by_pair[pair] = by_pair.get(pair, 0) + 1
        for sink in self._sinks:
            sink.accept(entry)
        for listener in self._listeners:
            listener(entry)
        return entry

    def record(self, source: str, category: str, **detail: Any) -> Optional[TraceRecord]:
        """Back-compat eager form of :meth:`emit` (keyword arguments as detail)."""
        return self.emit(source, category, detail if detail else None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total records captured since construction / the last :meth:`clear`."""
        return self.counters.total

    def __iter__(self) -> Iterator[TraceRecord]:
        """Iterate the records retained by the primary queryable sink."""
        if self._primary is None:
            return iter(())
        return iter(self._primary)  # type: ignore[arg-type]

    def filter(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Records retained by the primary sink matching every criterion."""
        if self._primary is None:
            return []
        return self._primary.filter(  # type: ignore[union-attr]
            category=category, source=source, since=since, until=until
        )

    def count(self, category: Optional[str] = None, source: Optional[str] = None) -> int:
        """Number of records captured matching the criteria (O(1), live)."""
        return self.counters.count(category=category, source=source)

    def last(
        self, category: Optional[str] = None, source: Optional[str] = None
    ) -> Optional[TraceRecord]:
        """The most recent retained record matching the criteria, if any."""
        if self._primary is None:
            return None
        return self._primary.last(category=category, source=source)  # type: ignore[union-attr]

    def clear(self) -> None:
        """Drop all captured records and reset the live counters."""
        self.counters.clear()
        for sink in self._sinks:
            sink.clear()
