"""Package version, kept in one place so documentation and tooling agree."""

__version__ = "1.0.0"
