"""Declarative fault specifications.

A :class:`FaultSpec` is one scheduled network-dynamics event — a link
failing, a port flapping, a loss model attaching to a segment — described as
pure data, exactly like the topology side of a
:class:`~repro.scenario.spec.ScenarioSpec`.  Specs are frozen dataclasses so
fault families can be generated with :func:`dataclasses.replace` and swept by
the scenario matrix expander (failure time, loss rate and degradation factors
are ordinary factory parameters).

The runtime counterpart is :class:`repro.faults.timeline.FaultTimeline`,
which resolves target names against a live network and schedules every event
through the simulator's *control path* — the facade under the sharded fabric
— so the same timeline is bit-identical under the single engine, strict
sharding and relaxed canonical-merge execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ReproError

#: Every fault kind the subsystem understands.
#:
#: * ``link-down`` / ``link-up`` — fail/restore a whole LAN segment (cable
#:   cut): nothing transmits, everything queued or sent meanwhile is lost.
#: * ``port-down`` / ``port-up`` — administratively fail one station NIC
#:   (``target`` device/host, ``port`` interface name; hosts may omit the
#:   port, meaning their single NIC).
#: * ``frame-loss`` / ``frame-corrupt`` — attach a seeded stochastic
#:   loss/corruption model to a segment (``rate`` / ``corrupt_rate``; a rate
#:   of zero for both detaches the model).
#: * ``degrade`` — scale a segment's bandwidth down and/or add propagation
#:   delay (``bandwidth_scale`` in (0, 1], ``extra_delay`` >= 0; the neutral
#:   values restore the segment to nominal).
#: * ``node-crash`` / ``node-restart`` — fail-silent crash of a whole
#:   station: every interface goes down (the node is partitioned from the
#:   network), then comes back.
FAULT_KINDS = (
    "link-down",
    "link-up",
    "port-down",
    "port-up",
    "frame-loss",
    "frame-corrupt",
    "degrade",
    "node-crash",
    "node-restart",
)

#: Kinds whose target must be a segment.
SEGMENT_KINDS = ("link-down", "link-up", "frame-loss", "frame-corrupt", "degrade")

#: Kinds whose target must be a station (device or host).
PORT_KINDS = ("port-down", "port-up")

#: Kinds that fail/restore a whole station.
NODE_KINDS = ("node-crash", "node-restart")


class FaultError(ReproError):
    """Invalid fault specification or timeline use."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault event, as pure data.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        at: absolute simulated time (seconds) the event fires.
        target: name of the component the event applies to — a segment for
            the segment kinds, a device or host for the port/node kinds.
        port: interface name on the target device (``port-down``/``port-up``
            only; optional for hosts, whose single NIC is implied).
        rate: frame-loss probability for ``frame-loss``/``frame-corrupt``.
        corrupt_rate: corruption probability (``frame-corrupt`` sets this;
            a combined model may carry both rates — their sum is capped at 1).
        bandwidth_scale: ``degrade`` bandwidth multiplier in (0, 1].
        extra_delay: ``degrade`` additional propagation delay in seconds.
        seed: extra seed material for the loss model's random stream
            (combined with the timeline seed and the segment name).
    """

    kind: str
    at: float
    target: str
    port: Optional[str] = None
    rate: float = 0.0
    corrupt_rate: float = 0.0
    bandwidth_scale: float = 1.0
    extra_delay: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at < 0:
            raise FaultError(f"fault {self.kind!r} scheduled at negative time {self.at}")
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(f"fault loss rate {self.rate} outside [0, 1]")
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise FaultError(f"fault corrupt rate {self.corrupt_rate} outside [0, 1]")
        if self.rate + self.corrupt_rate > 1.0:
            raise FaultError(
                f"loss rate {self.rate} + corrupt rate {self.corrupt_rate} exceeds 1"
            )
        if not 0.0 < self.bandwidth_scale <= 1.0:
            raise FaultError(
                f"degrade bandwidth_scale {self.bandwidth_scale} outside (0, 1]"
            )
        if self.extra_delay < 0:
            raise FaultError(f"degrade extra_delay {self.extra_delay} is negative")
        if self.port is not None and self.kind not in PORT_KINDS:
            raise FaultError(f"fault kind {self.kind!r} does not take a port")
        if self.kind == "frame-corrupt" and self.rate:
            raise FaultError(
                "frame-corrupt takes corrupt_rate, not rate (rate is the "
                "silent-loss probability; a combined model is spelled "
                "frame-loss with both rates)"
            )

    def describe(self) -> str:
        """A one-line human-readable form (timeline logs and examples)."""
        extra = ""
        if self.kind in PORT_KINDS and self.port:
            extra = f".{self.port}"
        elif self.kind in ("frame-loss", "frame-corrupt"):
            extra = f" rate={self.rate:g}/corrupt={self.corrupt_rate:g}"
        elif self.kind == "degrade":
            extra = (
                f" bandwidth x{self.bandwidth_scale:g}"
                f" +{self.extra_delay:g}s delay"
            )
        return f"t={self.at:g}s {self.kind} {self.target}{extra}"
