"""The sharded event fabric: partitioned simulators under conservative sync.

A :class:`ShardedSimulator` coordinates several
:class:`~repro.sim.shard.EngineShard` scheduling cores.  Every component of a
scenario (segment, host, device) is *placed* on one shard and schedules onto
that shard's event ring; the only cross-shard coupling is frame handoff on a
LAN segment whose stations live on different shards (see
:meth:`~repro.lan.segment.Segment` — the inter-shard delivery channel).

**Synchronization model.**  Shards advance under a conservative protocol:
the coordinator repeatedly picks the shard holding the globally earliest
pending event and lets it run a *batch* — every event strictly below the
earliest pending key of any other shard (the batch limit).  Cross-shard
pushes made while a batch runs shrink the limit live, so no shard ever runs
past an event another shard must fire first.  This next-event bound is at
least as tight as the classic clock-plus-lookahead bound — the lookahead
derived from inter-shard :attr:`Segment.propagation_delay` (recorded as
:attr:`ShardedSimulator.lookahead_ns`) guarantees cross-shard handoffs land
strictly in the shard's future, which is what makes batches non-trivial and
the fabric deadlock-free.

**Determinism guarantee.**  Shard queues share one event-sequence counter
and the coordinator dispatches in the exact global ``(time_ns, sequence)``
order, so a sharded run executes the very same callback sequence as the
single :class:`~repro.sim.engine.Simulator` — every trace record, counter and
component statistic is bit-identical.  Per-shard trace streams carry a shared
emission sequence (:attr:`TraceRecord.seq`); :class:`FabricTrace` merges them
back into single-engine emission order by that key, deterministically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import SimulationError
from repro.sim.clock import Clock, seconds_to_ns
from repro.sim.events import Event
from repro.sim.random_source import RandomSource
from repro.sim.shard import EngineShard, ShardTraceRecorder
from repro.sim.trace import (
    CountingSink,
    TraceRecord,
    TraceSink,
    last_match,
    match_records,
)

#: "No bound" sentinel for drain-style dispatch (far beyond any event time).
_NO_BOUND_NS = 2 ** 63


class FabricTrace:
    """The fabric-wide trace view: shared counters, merged record streams.

    Quacks like a :class:`~repro.sim.trace.TraceRecorder` for every existing
    consumer: ``CounterWindow`` reads the live shared :attr:`counters`,
    analysis code iterates / filters the merged stream, and gating calls
    (``disable_category`` et al.) fan out to every shard recorder so hot-path
    producers keep their one-set-lookup ``wants()`` check.
    """

    def __init__(
        self,
        recorders: List[ShardTraceRecorder],
        counters: CountingSink,
        shared_sinks: List[TraceSink],
    ) -> None:
        self._recorders = recorders
        self._counters_sink = counters
        self._shared_sinks = shared_sinks
        self._enabled = True
        self._disabled_categories: set = set()
        for recorder in recorders:
            recorder._sync_all = self.sync_counters

    @property
    def counters(self) -> CountingSink:
        """The live fabric-wide counters, synced with every shard stream.

        Shard recorders defer per-record counter bookkeeping off the emit hot
        path; any read through this property (or through a recorder's
        ``counters``) folds the outstanding records in first, so consumers
        such as ``CounterWindow`` always see exact totals.
        """
        self.sync_counters()
        return self._counters_sink

    def sync_counters(self) -> None:
        """Fold every shard's unsynced records into the shared pair table."""
        for recorder in self._recorders:
            recorder._sync_own_counters()

    # ------------------------------------------------------------------
    # Gating (fans out so producers on any shard see the same state)
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether records are currently being captured."""
        return self._enabled

    def disable(self) -> None:
        """Stop capturing records on every shard."""
        self._enabled = False
        for recorder in self._recorders:
            recorder.disable()

    def enable(self) -> None:
        """Resume capturing records on every shard."""
        self._enabled = True
        for recorder in self._recorders:
            recorder.enable()

    def disable_category(self, category: str) -> None:
        """Suppress one category fabric-wide."""
        self._disabled_categories.add(category)
        for recorder in self._recorders:
            recorder.disable_category(category)

    def enable_category(self, category: str) -> None:
        """Re-enable a previously disabled category fabric-wide."""
        self._disabled_categories.discard(category)
        for recorder in self._recorders:
            recorder.enable_category(category)

    @property
    def disabled_categories(self) -> frozenset:
        """The categories currently gated off."""
        return frozenset(self._disabled_categories)

    def wants(self, category: str) -> bool:
        """Whether a record in ``category`` would currently be captured."""
        return self._enabled and category not in self._disabled_categories

    # ------------------------------------------------------------------
    # Recording and listeners
    # ------------------------------------------------------------------

    def emit(self, source, category, detail=None) -> Optional[TraceRecord]:
        """Emit a record into the fabric (routed via shard 0's recorder)."""
        return self._recorders[0].emit(source, category, detail)

    def record(self, source, category, **detail) -> Optional[TraceRecord]:
        """Back-compat eager form of :meth:`emit`."""
        return self.emit(source, category, detail if detail else None)

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every new record, fabric-wide."""
        for recorder in self._recorders:
            recorder.add_listener(listener)

    def remove_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Unregister a listener."""
        for recorder in self._recorders:
            recorder.remove_listener(listener)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def merged_records(self) -> List[TraceRecord]:
        """Every retained record, merged into emission order by ``seq``.

        Per-shard streams are already seq-ascending, so this is a k-way merge;
        the result is bit-identical to the single engine's record list.  When
        shared sinks are installed (e.g. one bounded ring buffer for all
        shards) the first queryable sink already holds the merged stream.
        """
        for sink in self._shared_sinks:
            if hasattr(sink, "filter"):
                return list(sink)  # type: ignore[arg-type]
        streams = [recorder.records_list() for recorder in self._recorders]
        live = [s for s in streams if s]
        if len(live) == 1:
            return list(live[0])
        return list(heapq.merge(*live, key=lambda record: record.seq))

    def __len__(self) -> int:
        """Total records captured (live, O(pairs))."""
        return self.counters.total

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.merged_records())

    def filter(self, category=None, source=None, since=None, until=None):
        """Records matching every provided criterion, in emission order."""
        return match_records(
            self.merged_records(), category=category, source=source,
            since=since, until=until,
        )

    def count(self, category=None, source=None) -> int:
        """Number of records captured matching the criteria (O(1), live)."""
        return self.counters.count(category=category, source=source)

    def last(self, category=None, source=None) -> Optional[TraceRecord]:
        """The most recent retained record matching the criteria, if any."""
        return last_match(self.merged_records(), category=category, source=source)

    def clear(self) -> None:
        """Drop all captured records and reset the live counters."""
        self._counters_sink.clear()
        for recorder in self._recorders:
            recorder.clear()
        for sink in self._shared_sinks:
            sink.clear()


class ShardedSimulator:
    """A deterministic discrete-event fabric of cooperating shard engines.

    Drop-in compatible with :class:`~repro.sim.engine.Simulator` for
    experiment drivers (``run_until`` / ``run`` / ``step``, ``now``,
    ``schedule*``, ``trace``), while components are constructed on individual
    shards via :meth:`sim_for`.

    Args:
        seed: seed for the fabric-wide :class:`RandomSource`.
        shards: number of shard engines.
        trace_sinks: optional sinks shared by every shard (e.g. one bounded
            :class:`~repro.sim.trace.RingBufferSink`); ``None`` keeps the
            default per-shard record buffers merged on query.
        placement: component name -> shard index used by :meth:`sim_for`
            (the scenario compiler passes the partitioner's assignment).
            Unknown names fall back to shard 0.
        lookahead_ns: minimum cross-shard handoff latency (derived from
            inter-shard segment propagation delays by the partitioner);
            recorded for introspection and validated positive by the
            partitioner.
    """

    def __init__(
        self,
        seed: int = 0,
        shards: int = 2,
        trace_sinks: Optional[Iterable[TraceSink]] = None,
        placement: Optional[Mapping[str, int]] = None,
        lookahead_ns: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise SimulationError("a sharded simulator needs at least one shard")
        self.clock = Clock()
        self.random = RandomSource(seed)
        self._event_counter = itertools.count()
        self._emit_counter = itertools.count()
        counters_sink = CountingSink()
        shared_sinks = list(trace_sinks) if trace_sinks is not None else None
        recorders = [
            ShardTraceRecorder(
                self.clock, index, counters_sink, self._emit_counter, shared_sinks
            )
            for index in range(shards)
        ]
        self._shards: List[EngineShard] = [
            EngineShard(self, index, self.clock, self.random, self._event_counter, rec)
            for index, rec in enumerate(recorders)
        ]
        self.trace = FabricTrace(recorders, counters_sink, shared_sinks or [])
        self._placement: Dict[str, int] = dict(placement or {})
        self.lookahead_ns = lookahead_ns
        self._active: Optional[EngineShard] = None
        self._batch_limit: Optional[tuple] = None
        self._tops: List[Optional[tuple]] = [None] * shards
        self._running = False
        self._auto_station_ids: Dict[int, int] = {}

    def auto_station_id(self, base: int) -> int:
        """Allocate the next automatic station id in the ``base`` namespace.

        One fabric-wide counter per namespace, mirroring
        :meth:`Simulator.auto_station_id` — components built in the same
        order draw the same ids whether the run is sharded or not.
        """
        next_id = self._auto_station_ids.get(base, base)
        self._auto_station_ids[base] = next_id + 1
        return next_id

    # ------------------------------------------------------------------
    # Shards and placement
    # ------------------------------------------------------------------

    @property
    def shards(self) -> Tuple[EngineShard, ...]:
        """The shard engines, in index order."""
        return tuple(self._shards)

    @property
    def n_shards(self) -> int:
        """Number of shards in the fabric."""
        return len(self._shards)

    @property
    def counters(self) -> CountingSink:
        """The live fabric-wide trace counters (synced on read)."""
        return self.trace.counters

    def sim_for(self, name: str) -> EngineShard:
        """The shard engine the named component is placed on.

        Names missing from the placement map land on shard 0 (the fabric's
        control shard, which also hosts facade-scheduled work such as
        measurement drivers).
        """
        return self._shards[self._placement.get(name, 0)]

    def shard_stats(self) -> List[dict]:
        """Per-shard progress/load counters (diagnostics and benchmarks)."""
        return [
            {
                "shard": shard.index,
                "events_dispatched": shard.events_dispatched,
                "pending_events": shard.pending_events,
                "cursor_ns": shard.cursor_ns,
                "cross_pushes": shard.cross_pushes,
                "cancelled_discarded": shard._queue.cancelled_discarded,
                "records": (
                    len(shard.trace._fast) if shard.trace._fast is not None else None
                ),
            }
            for shard in self._shards
        ]

    # ------------------------------------------------------------------
    # Time (Simulator-compatible)
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock._now_s

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self.clock._now_ns

    @property
    def events_dispatched(self) -> int:
        """Total events dispatched across all shards."""
        return sum(shard._dispatched for shard in self._shards)

    @property
    def pending_events(self) -> int:
        """Live events waiting across all shards."""
        return sum(len(shard._queue) for shard in self._shards)

    @property
    def cancelled_events_discarded(self) -> int:
        """Cancelled events physically dropped across all shard rings."""
        return sum(shard._queue.cancelled_discarded for shard in self._shards)

    # ------------------------------------------------------------------
    # Scheduling (facade: lands on the control shard)
    # ------------------------------------------------------------------

    def schedule(self, delay_seconds, callback, label: str = "") -> Event:
        """Schedule ``callback`` after ``delay_seconds`` (control shard)."""
        return self._shards[0].schedule(delay_seconds, callback, label)

    def schedule_at(self, when_seconds, callback, label: str = "") -> Event:
        """Schedule ``callback`` at an absolute time (control shard)."""
        return self._shards[0].schedule_at(when_seconds, callback, label)

    def schedule_at_ns(self, when_ns, callback, label: str = "") -> Event:
        """Schedule ``callback`` at ``when_ns`` (control shard)."""
        return self._shards[0].schedule_at_ns(when_ns, callback, label)

    def call_soon(self, callback, label: str = "") -> Event:
        """Schedule ``callback`` at the current time (control shard)."""
        return self._shards[0].call_soon(callback, label)

    def schedule_fire(self, when_seconds, callback, label: str = "") -> None:
        """Fire-and-forget scheduling at an absolute time (control shard).

        Components constructed directly against the facade (e.g. a monitoring
        NIC built with ``run.sim``) resolve here; their work runs on shard 0.
        """
        self._shards[0].schedule_fire(when_seconds, callback, label)

    # ------------------------------------------------------------------
    # Cross-shard bookkeeping
    # ------------------------------------------------------------------

    def _note_cross_push(self, shard: EngineShard, time_ns: int, sequence: int) -> None:
        """A batch on another shard scheduled into ``shard``'s ring.

        Refreshes the cached top key and shrinks the live batch limit so the
        running batch stops before overtaking the new event.
        """
        shard.cross_pushes += 1
        key = (time_ns, sequence)
        index = shard.index
        top = self._tops[index]
        if top is None or key < top:
            self._tops[index] = key
        limit = self._batch_limit
        if limit is None or key < limit:
            self._batch_limit = key

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _dispatch(self, until_ns: int, max_events: Optional[int] = None) -> int:
        """Dispatch events in global (time, sequence) order up to ``until_ns``."""
        shards = self._shards
        tops = self._tops
        for shard in shards:
            tops[shard.index] = shard._queue.top_key()
        dispatched = 0
        while True:
            # One pass finds both the globally minimal shard and the batch
            # limit (the smallest key any *other* shard holds).
            best = None
            best_key = None
            limit = None
            for index, key in enumerate(tops):
                if key is None:
                    continue
                if best_key is None or key < best_key:
                    limit = best_key
                    best_key = key
                    best = shards[index]
                elif limit is None or key < limit:
                    limit = key
            if best is None or best_key[0] > until_ns:
                break
            best_index = best.index
            self._batch_limit = limit
            self._active = best
            budget = None if max_events is None else max_events - dispatched
            if budget is not None and budget <= 0:
                self._active = None
                break
            ran = best._run_batch(until_ns, budget)
            self._active = None
            dispatched += ran
            fresh = best._queue.top_key()
            if ran == 0 and fresh == best_key:
                # The batch was eligible to run its top event but did not —
                # the caches can only be stale *smaller*, so this means no
                # further progress is possible.  Guard against a silent spin.
                raise SimulationError(
                    "sharded dispatch made no progress; shard "
                    f"{best_index} top={fresh!r} limit={limit!r}"
                )
            tops[best_index] = fresh
            if max_events is not None and dispatched >= max_events:
                break
        return dispatched

    def step(self) -> bool:
        """Dispatch the single globally earliest event, if any."""
        return self._dispatch(_NO_BOUND_NS, max_events=1) == 1

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until every shard ring drains (or ``max_events`` is reached)."""
        if self._running:
            raise SimulationError("Simulator.run() called re-entrantly")
        self._running = True
        try:
            return self._dispatch(_NO_BOUND_NS, max_events)
        finally:
            self._running = False

    def run_until(self, until_seconds: float, max_events: Optional[int] = None) -> int:
        """Run events with firing times ``<= until_seconds``.

        As with the single engine, the clock is advanced to ``until_seconds``
        at the end even if the rings drained earlier.
        """
        if self._running:
            raise SimulationError("Simulator.run_until() called re-entrantly")
        until_ns = seconds_to_ns(until_seconds)
        if until_ns < self.clock.now_ns:
            raise SimulationError(
                f"run_until({until_seconds}s) is earlier than the current "
                f"time {self.clock.now}s"
            )
        self._running = True
        try:
            dispatched = self._dispatch(until_ns, max_events)
            if self.clock.now_ns < until_ns:
                self.clock.advance_to_ns(until_ns)
        finally:
            self._running = False
        return dispatched

    def run_for(self, duration_seconds: float, max_events: Optional[int] = None) -> int:
        """Run for ``duration_seconds`` of simulated time starting from now."""
        return self.run_until(self.now + duration_seconds, max_events=max_events)

    def reset(self) -> None:
        """Discard all pending events, traces and rewind the clock to zero.

        Station-id namespaces rewind too, mirroring :meth:`Simulator.reset`.
        """
        for shard in self._shards:
            shard._queue.clear()
            shard._dispatched = 0
            shard.cursor_ns = 0
            shard.cross_pushes = 0
        self._tops = [None] * len(self._shards)
        self.clock.reset()
        self.trace.clear()
        self._auto_station_ids.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedSimulator(shards={len(self._shards)}, now={self.now:.6f}s, "
            f"pending={self.pending_events}, dispatched={self.events_dispatched})"
        )
