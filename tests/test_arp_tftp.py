"""Tests for the ARP and TFTP wire formats and endpoint state machines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ethernet.mac import MacAddress
from repro.exceptions import PacketError
from repro.netstack.arp import ArpOperation, ArpPacket
from repro.netstack.ip import IPv4Address
from repro.netstack.tftp import (
    BLOCK_SIZE,
    TftpAck,
    TftpClient,
    TftpData,
    TftpError,
    TftpOpcode,
    TftpServer,
    TftpWriteRequest,
    decode_tftp,
)

MAC_A = MacAddress.from_string("02:00:00:00:00:01")
MAC_B = MacAddress.from_string("02:00:00:00:00:02")
IP_A = IPv4Address.from_string("10.0.0.1")
IP_B = IPv4Address.from_string("10.0.0.2")


# ---------------------------------------------------------------------------
# ARP
# ---------------------------------------------------------------------------


class TestArp:
    def test_request_roundtrip(self):
        request = ArpPacket.request(MAC_A, IP_A, IP_B)
        decoded = ArpPacket.decode(request.encode())
        assert decoded.operation == int(ArpOperation.REQUEST)
        assert decoded.sender_mac == MAC_A
        assert decoded.target_ip == IP_B

    def test_reply_construction(self):
        request = ArpPacket.request(MAC_A, IP_A, IP_B)
        reply = request.make_reply(MAC_B)
        assert reply.operation == int(ArpOperation.REPLY)
        assert reply.sender_mac == MAC_B
        assert reply.sender_ip == IP_B
        assert reply.target_mac == MAC_A
        assert reply.target_ip == IP_A

    def test_reply_on_reply_rejected(self):
        reply = ArpPacket.request(MAC_A, IP_A, IP_B).make_reply(MAC_B)
        with pytest.raises(PacketError):
            reply.make_reply(MAC_A)

    def test_padding_tolerated(self):
        encoded = ArpPacket.request(MAC_A, IP_A, IP_B).encode() + b"\x00" * 18
        decoded = ArpPacket.decode(encoded)
        assert decoded.sender_ip == IP_A

    def test_short_packet_rejected(self):
        with pytest.raises(PacketError):
            ArpPacket.decode(b"\x00\x01\x08\x00")

    def test_bad_hardware_type_rejected(self):
        encoded = bytearray(ArpPacket.request(MAC_A, IP_A, IP_B).encode())
        encoded[1] = 9
        with pytest.raises(PacketError):
            ArpPacket.decode(bytes(encoded))


# ---------------------------------------------------------------------------
# TFTP packet formats
# ---------------------------------------------------------------------------


class TestTftpPackets:
    def test_wrq_roundtrip(self):
        packet = decode_tftp(TftpWriteRequest("switchlet.bin").encode())
        assert isinstance(packet, TftpWriteRequest)
        assert packet.filename == "switchlet.bin"
        assert packet.mode == "octet"

    def test_data_roundtrip(self):
        packet = decode_tftp(TftpData(3, b"abc").encode())
        assert isinstance(packet, TftpData)
        assert packet.block == 3
        assert packet.data == b"abc"

    def test_data_block_size_limit(self):
        with pytest.raises(PacketError):
            TftpData(1, b"x" * (BLOCK_SIZE + 1)).encode()

    def test_ack_roundtrip(self):
        packet = decode_tftp(TftpAck(9).encode())
        assert isinstance(packet, TftpAck)
        assert packet.block == 9

    def test_error_roundtrip(self):
        packet = decode_tftp(TftpError(4, "nope").encode())
        assert isinstance(packet, TftpError)
        assert packet.code == 4
        assert packet.message == "nope"

    def test_rrq_is_surfaced_as_error(self):
        rrq = (
            int(TftpOpcode.RRQ).to_bytes(2, "big") + b"file\x00octet\x00"
        )
        packet = decode_tftp(rrq)
        assert isinstance(packet, TftpError)

    def test_malformed_rejected(self):
        with pytest.raises(PacketError):
            decode_tftp(b"\x00")
        with pytest.raises(PacketError):
            decode_tftp(b"\x00\x09whatever")


# ---------------------------------------------------------------------------
# TFTP endpoints (in-memory transport)
# ---------------------------------------------------------------------------


class _Loopback:
    """Directly connects a TftpClient and TftpServer for unit testing."""

    def __init__(self, on_file):
        self.server = TftpServer(send=self._to_client, on_file=on_file)
        self.client_inbox = []

    def _to_client(self, payload, remote):
        self.client_inbox.append(payload)

    def run_transfer(self, filename, data):
        finished = []
        client = TftpClient(
            send=lambda payload, remote: self.server.handle_datagram(payload, remote),
            filename=filename,
            data=data,
            remote=("server", 69),
            on_complete=lambda ok: finished.append(ok),
        )
        client.start()
        # Pump server responses back into the client until the exchange quiesces.
        while self.client_inbox and not client.finished:
            payload = self.client_inbox.pop(0)
            client.handle_datagram(payload, ("server", 69))
        return client, finished


class TestTftpEndpoints:
    @pytest.mark.parametrize(
        "size", [0, 1, BLOCK_SIZE - 1, BLOCK_SIZE, BLOCK_SIZE + 1, 3 * BLOCK_SIZE, 2000]
    )
    def test_transfer_sizes(self, size):
        received = {}
        loop = _Loopback(on_file=lambda name, data: received.update({name: data}))
        data = bytes((i * 7) & 0xFF for i in range(size))
        client, finished = loop.run_transfer("module.bin", data)
        assert finished == [True]
        assert received == {"module.bin": data}
        assert loop.server.transfers_completed == 1

    def test_non_octet_mode_rejected(self):
        rejected = []
        server = TftpServer(send=lambda payload, remote: rejected.append(decode_tftp(payload)),
                            on_file=lambda name, data: None)
        server.handle_datagram(TftpWriteRequest("f", mode="netascii").encode(), ("x", 1))
        assert isinstance(rejected[-1], TftpError)
        assert server.requests_rejected == 1

    def test_read_requests_rejected(self):
        rejected = []
        server = TftpServer(send=lambda payload, remote: rejected.append(decode_tftp(payload)),
                            on_file=lambda name, data: None)
        rrq = int(TftpOpcode.RRQ).to_bytes(2, "big") + b"file\x00octet\x00"
        server.handle_datagram(rrq, ("x", 1))
        assert isinstance(rejected[-1], TftpError)

    def test_data_without_session_rejected(self):
        responses = []
        server = TftpServer(send=lambda payload, remote: responses.append(decode_tftp(payload)),
                            on_file=lambda name, data: None)
        server.handle_datagram(TftpData(1, b"abc").encode(), ("x", 1))
        assert isinstance(responses[-1], TftpError)

    def test_duplicate_data_blocks_ignored(self):
        received = {}
        acks = []
        server = TftpServer(
            send=lambda payload, remote: acks.append(decode_tftp(payload)),
            on_file=lambda name, data: received.update({name: data}),
        )
        server.handle_datagram(TftpWriteRequest("f").encode(), ("x", 1))
        server.handle_datagram(TftpData(1, b"A" * BLOCK_SIZE).encode(), ("x", 1))
        # Retransmission of block 1 must not duplicate the data.
        server.handle_datagram(TftpData(1, b"A" * BLOCK_SIZE).encode(), ("x", 1))
        server.handle_datagram(TftpData(2, b"tail").encode(), ("x", 1))
        assert received["f"] == b"A" * BLOCK_SIZE + b"tail"

    def test_client_aborts_on_server_error(self):
        finished = []
        client = TftpClient(
            send=lambda payload, remote: None,
            filename="f",
            data=b"abc",
            remote=("server", 69),
            on_complete=lambda ok: finished.append(ok),
        )
        client.start()
        client.handle_datagram(TftpError(0, "denied").encode(), ("server", 69))
        assert finished == [False]

    @given(st.binary(max_size=4 * BLOCK_SIZE + 17))
    @settings(max_examples=30, deadline=None)
    def test_any_payload_transfers_intact(self, data):
        received = {}
        loop = _Loopback(on_file=lambda name, payload: received.update({name: payload}))
        _, finished = loop.run_transfer("blob", data)
        assert finished == [True]
        assert received["blob"] == data
