"""Convergence measurement around scripted faults.

The paper's central dynamic claim is that an actively-bridged network
*reacts* to change: after a link failure the spanning tree detects the loss
(max-age expiry), unblocks the redundant port, and walks it through
listening → learning → forwarding.  :class:`ConvergenceProbe` measures that
episode externally — from trace counters and records, never by reaching into
a switchlet — exactly the way the paper instruments its bridges with ping
and tcpdump rather than internal hooks:

* **detection time** — first spanning-tree port transition after the fault
  (the tree reacting at all);
* **reconvergence time** — last port transition after the fault (the tree
  settled; for an 802.1D failover this is the blocked port reaching
  ``forwarding``, 2 × forward-delay after detection);
* **frames lost during the outage** — ``segment.drop`` records (link-down
  and loss-model drops) via the O(1) live counters, plus downed-NIC drop
  deltas read from interface statistics.

Every figure is total for zero-delivery windows: a probe over an outage in
which *nothing* was delivered, nothing transitioned, or the fault never
fired reports zeros/``None`` rather than raising — the same robustness
contract the ping/ttcp rate windows follow.

Works identically on the single engine, strict shards and relaxed
canonical-merge runs (record scans go through the trace's defined merge
order; counter reads are mode-independent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import CounterWindow


@dataclass
class ConvergenceReport:
    """The outcome of one convergence episode.

    Attributes:
        fault_time: when the watched fault fired (simulated seconds).
        detection_s: seconds from the fault to the first spanning-tree port
            transition (``None`` if no bridge reacted inside the window).
        reconvergence_s: seconds from the fault to the last observed port
            transition (``None`` if no bridge reacted).
        transitions: port-state transitions observed after the fault.
        frames_lost: frames dropped by failed/lossy segments during the
            window (``segment.drop`` records).
        nic_frames_dropped: additional frames dropped by administratively
            downed NICs during the window.
        forwarding_restored_at: absolute time of the last transition *into*
            the forwarding state after the fault, if any — the moment the
            data path is whole again.
    """

    fault_time: float
    detection_s: Optional[float] = None
    reconvergence_s: Optional[float] = None
    transitions: int = 0
    frames_lost: int = 0
    nic_frames_dropped: int = 0
    forwarding_restored_at: Optional[float] = None

    def summary(self) -> Dict[str, object]:
        """A flat dict for tables and BENCH entries."""
        return {
            "fault_time": self.fault_time,
            "detection_s": self.detection_s,
            "reconvergence_s": self.reconvergence_s,
            "transitions": self.transitions,
            "frames_lost": self.frames_lost,
            "nic_frames_dropped": self.nic_frames_dropped,
        }


class ConvergenceProbe:
    """Watch trace counters across a fault and report the convergence episode.

    Args:
        sim: the simulator (single engine or fabric facade).
        network: optional :class:`~repro.lan.topology.Network`; when given,
            per-NIC drop counters are snapshotted so the report can separate
            downed-port drops from segment-level drops.
        fault_time: when the watched fault fires (defaults to the probe's
            start time; :meth:`observe_fault` can set it later, e.g. from
            ``run.faults.events[0].at``).

    Usage::

        probe = ConvergenceProbe(run.sim, network=run.network,
                                 fault_time=fail_at)
        probe.start()
        run.sim.run_until(fail_at + settle)
        report = probe.report()
    """

    #: Trace category counted as segment-level frame loss.
    DROP_CATEGORY = "segment.drop"

    #: Trace category holding spanning-tree port transitions.
    LOG_CATEGORY = "switchlet.log"

    def __init__(self, sim, network=None, fault_time: Optional[float] = None) -> None:
        self.sim = sim
        self.network = network
        self.fault_time = fault_time
        self._window: Optional[CounterWindow] = None
        self._nic_drops_at_start: Dict[str, int] = {}
        self._started_at: Optional[float] = None

    def start(self) -> None:
        """Open the measurement window (snapshot counters; O(1) per read)."""
        self._window = CounterWindow(self.sim.trace)
        self._started_at = self.sim.now
        if self.fault_time is None:
            self.fault_time = self._started_at
        self._nic_drops_at_start = self._nic_drops()

    def observe_fault(self, at: float) -> None:
        """Declare (or correct) the fault instant the report is relative to."""
        self.fault_time = at

    def _nic_drops(self) -> Dict[str, int]:
        drops: Dict[str, int] = {}
        if self.network is None:
            return drops
        for host in self.network.hosts.values():
            drops[host.nic.name] = host.nic.frames_dropped
        for station in self.network.stations.values():
            for nic in getattr(station, "interfaces", {}).values():
                drops[nic.name] = nic.frames_dropped
        return drops

    def _transitions(self) -> List[Tuple[float, str, str]]:
        """(time, bridge, message) of every port transition after the fault."""
        records = self.sim.trace.filter(
            category=self.LOG_CATEGORY, since=self.fault_time
        )
        out = []
        for record in records:
            message = record.detail.get("message", "")
            if "->" in message and "port" in message:
                out.append((record.time, record.source, message))
        return out

    def report(self) -> ConvergenceReport:
        """Close the window and summarize the episode (total for empty windows)."""
        if self._window is None or self.fault_time is None:
            raise RuntimeError("ConvergenceProbe.report() called before start()")
        transitions = self._transitions()
        detection = reconvergence = None
        forwarding_at = None
        if transitions:
            times = [time for time, _, _ in transitions]
            detection = min(times) - self.fault_time
            reconvergence = max(times) - self.fault_time
            into_forwarding = [
                time for time, _, message in transitions
                if message.rstrip().endswith("forwarding")
            ]
            if into_forwarding:
                forwarding_at = max(into_forwarding)
        # Counter windows saturate at zero: the trace may legitimately be
        # cleared mid-experiment (benchmarks do), and a "negative" delta must
        # not masquerade as loss.
        frames_lost = max(0, self._window.count(category=self.DROP_CATEGORY))
        nic_drops = 0
        for name, now_dropped in self._nic_drops().items():
            nic_drops += max(
                0, now_dropped - self._nic_drops_at_start.get(name, 0)
            )
        return ConvergenceReport(
            fault_time=self.fault_time,
            detection_s=detection,
            reconvergence_s=reconvergence,
            transitions=len(transitions),
            frames_lost=frames_lost,
            nic_frames_dropped=nic_drops,
            forwarding_restored_at=forwarding_at,
        )
