"""Section 5.2 — loading switchlets over the network.

Measures the network loading path itself: how long it takes to ship the
complete bridge switchlet stack to an unprogrammed node over the
Ethernet/IP/UDP/TFTP path and have it take effect (the node starts
forwarding).  The paper does not give a table for this, but function agility
(Section 7.5) depends on it and the loader is the heart of the system, so the
harness reports bytes shipped, TFTP round trips, and time-to-effective.
"""

from __future__ import annotations

from _harness import emit, run_once

from repro.analysis.tables import render_table
from repro.core.node import ActiveNode
from repro.core.netloader import NetworkLoader
from repro.lan.topology import NetworkBuilder
from repro.measurement.ping import PingRunner
from repro.netstack.ip import IPv4Address
from repro.netstack.tftp import TFTP_PORT, TftpClient
from repro.switchlets.packaging import dumb_bridge_package, learning_bridge_package


def measure():
    """Ship dumb + learning switchlets over TFTP, then verify forwarding works."""
    builder = NetworkBuilder(seed=12)
    builder.add_segment("lan1")
    builder.add_segment("lan2")
    admin = builder.add_host("admin", "lan1")
    far_host = builder.add_host("far", "lan2")
    builder.populate_static_arp()
    network = builder.build()
    sim = network.sim

    node = ActiveNode(sim, "target")
    node.add_interface("eth0", network.segment("lan1"))
    node.add_interface("eth1", network.segment("lan2"))
    node_ip = IPv4Address.from_string("10.0.0.250")
    NetworkLoader(node, node_ip, interface="eth0")
    admin.stack.add_static_arp(node_ip, node.interface("eth0").mac)

    packages = [
        dumb_bridge_package(node.environment.modules),
        learning_bridge_package(node.environment.modules),
    ]
    timeline = []

    def ship(index):
        if index >= len(packages):
            return
        package = packages[index]
        payload = package.to_bytes()
        started_at = sim.now
        client = TftpClient(
            send=lambda data, remote: admin.send_udp(node_ip, TFTP_PORT, 4100 + index, data),
            filename=f"{package.name}.bin",
            data=payload,
            remote=(node_ip, TFTP_PORT),
            on_complete=lambda ok: (
                timeline.append((package.name, len(payload), started_at, sim.now, ok)),
                ship(index + 1),
            ),
        )
        admin.bind_udp(4100 + index, lambda data, remote: client.handle_datagram(data, remote))
        client.start()

    sim.schedule(0.5, lambda: ship(0))
    sim.run_until(30.0)

    load_complete_at = timeline[-1][3] if timeline else None
    ping = PingRunner(sim, admin, far_host.ip, payload_size=256, count=3, interval=0.1)
    ping_result = ping.run(start_time=sim.now + 0.1)
    return timeline, load_complete_at, ping_result, node


def test_switchlet_loading_over_the_network(benchmark):
    timeline, load_complete_at, ping_result, node = run_once(benchmark, measure)

    rows = [
        [name, size, f"{finish - start:.4f} s", "ok" if ok else "FAILED"]
        for name, size, start, finish, ok in timeline
    ]
    emit(
        "Section 5.2 -- switchlet loading over Ethernet/IP/UDP/TFTP",
        render_table(["switchlet", "bytes shipped", "transfer + load time", "status"], rows),
    )
    emit(
        "Time to effective",
        f"all switchlets loaded by t={load_complete_at:.3f} s (simulated); the freshly "
        f"programmed bridge then forwarded {ping_result.received}/{ping_result.sent} pings "
        "between its two LANs.",
    )

    assert len(timeline) == 2
    assert all(ok for *_rest, ok in timeline)
    assert node.loader.loaded_names() == ["dumb-bridge", "learning-bridge"]
    assert ping_result.received == ping_result.sent
    # Each switchlet (a few KB over 512-byte TFTP blocks plus the dynamic link
    # cost) becomes effective in well under a second of simulated time.
    for _name, _size, start, finish, _ok in timeline:
        assert finish - start < 1.0
