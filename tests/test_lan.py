"""Tests for the LAN substrate: segments, NICs, hosts, topology builder."""

from __future__ import annotations

import pytest

from repro.costs.model import CostModel
from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import BROADCAST, MacAddress
from repro.exceptions import InterfaceError, TopologyError
from repro.lan.host import Host
from repro.lan.nic import NetworkInterface
from repro.lan.segment import Segment
from repro.lan.topology import NetworkBuilder
from repro.netstack.ip import IPv4Address
from repro.sim.engine import Simulator


def _frame(src="02:00:00:00:00:01", dst="02:00:00:00:00:02", payload=b"x" * 64):
    return EthernetFrame(
        destination=MacAddress.from_string(dst),
        source=MacAddress.from_string(src),
        ethertype=int(EtherType.MEASUREMENT),
        payload=payload,
    )


def _nic(sim, name, mac_suffix):
    return NetworkInterface(sim, name, MacAddress.locally_administered(mac_suffix))


# ---------------------------------------------------------------------------
# Segment
# ---------------------------------------------------------------------------


class TestSegment:
    def test_delivers_to_all_other_stations(self, sim):
        segment = Segment(sim, "lan")
        sender = _nic(sim, "a", 1)
        receiver1 = _nic(sim, "b", 2)
        receiver2 = _nic(sim, "c", 3)
        got = []
        for nic in (sender, receiver1, receiver2):
            nic.attach(segment)
            nic.set_promiscuous(True)
            nic.set_handler(lambda n, f: got.append(n.name))
        sender.send(_frame())
        sim.run()
        assert sorted(got) == ["b", "c"]

    def test_serialization_delay(self, sim):
        segment = Segment(sim, "lan", bandwidth_bps=100_000_000)
        frame = _frame(payload=b"x" * 1000)
        expected = frame.wire_length * 8 / 100_000_000
        assert segment.serialization_delay(frame) == pytest.approx(expected)

    def test_delivery_time_accounts_for_wire(self, sim):
        segment = Segment(sim, "lan", bandwidth_bps=10_000_000, propagation_delay=1e-5)
        sender = _nic(sim, "a", 1)
        receiver = _nic(sim, "b", 2)
        times = []
        sender.attach(segment)
        receiver.attach(segment)
        receiver.set_promiscuous(True)
        receiver.set_handler(lambda n, f: times.append(sim.now))
        frame = _frame(payload=b"x" * 1000)
        sender.send(frame)
        sim.run()
        expected = segment.serialization_delay(frame) + 1e-5
        assert times[0] == pytest.approx(expected, rel=1e-6)

    def test_medium_serializes_back_to_back_frames(self, sim):
        segment = Segment(sim, "lan", bandwidth_bps=10_000_000)
        sender = _nic(sim, "a", 1)
        receiver = _nic(sim, "b", 2)
        times = []
        sender.attach(segment)
        receiver.attach(segment)
        receiver.set_promiscuous(True)
        receiver.set_handler(lambda n, f: times.append(sim.now))
        frame = _frame(payload=b"x" * 1000)
        sender.send(frame)
        sender.send(frame)
        sim.run()
        gap = times[1] - times[0]
        assert gap == pytest.approx(segment.serialization_delay(frame), rel=1e-6)

    def test_detached_sender_rejected(self, sim):
        segment = Segment(sim, "lan")
        outsider = _nic(sim, "x", 9)
        with pytest.raises(TopologyError):
            segment.transmit(outsider, _frame())

    def test_double_attach_rejected(self, sim):
        segment = Segment(sim, "lan")
        nic = _nic(sim, "a", 1)
        nic.attach(segment)
        with pytest.raises(TopologyError):
            segment.attach(nic)

    def test_utilization_and_counters(self, sim):
        segment = Segment(sim, "lan")
        sender = _nic(sim, "a", 1)
        receiver = _nic(sim, "b", 2)
        sender.attach(segment)
        receiver.attach(segment)
        sender.send(_frame())
        sim.run()
        assert segment.frames_carried == 1
        assert segment.bytes_carried > 0
        assert 0.0 <= segment.utilization(elapsed_seconds=1.0) <= 1.0

    def test_invalid_parameters(self, sim):
        with pytest.raises(TopologyError):
            Segment(sim, "lan", bandwidth_bps=0)
        with pytest.raises(TopologyError):
            Segment(sim, "lan", propagation_delay=-1)


# ---------------------------------------------------------------------------
# NIC
# ---------------------------------------------------------------------------


class TestNic:
    def test_address_filter_without_promiscuous(self, sim):
        segment = Segment(sim, "lan")
        sender = _nic(sim, "a", 1)
        mine = NetworkInterface(sim, "b", MacAddress.from_string("02:00:00:00:00:02"))
        other = NetworkInterface(sim, "c", MacAddress.from_string("02:00:00:00:00:03"))
        got = {"b": 0, "c": 0}
        for nic in (sender, mine, other):
            nic.attach(segment)
        mine.set_handler(lambda n, f: got.__setitem__("b", got["b"] + 1))
        other.set_handler(lambda n, f: got.__setitem__("c", got["c"] + 1))
        sender.send(_frame(dst="02:00:00:00:00:02"))
        sim.run()
        assert got == {"b": 1, "c": 0}

    def test_broadcast_accepted_by_everyone(self, sim):
        segment = Segment(sim, "lan")
        sender = _nic(sim, "a", 1)
        receiver = _nic(sim, "b", 2)
        got = []
        sender.attach(segment)
        receiver.attach(segment)
        receiver.set_handler(lambda n, f: got.append(True))
        sender.send(_frame(dst=str(BROADCAST)))
        sim.run()
        assert got == [True]

    def test_promiscuous_accepts_everything(self, sim):
        segment = Segment(sim, "lan")
        sender = _nic(sim, "a", 1)
        snooper = _nic(sim, "b", 2)
        got = []
        sender.attach(segment)
        snooper.attach(segment)
        snooper.set_promiscuous(True)
        snooper.set_handler(lambda n, f: got.append(True))
        sender.send(_frame(dst="02:00:00:00:00:77"))
        sim.run()
        assert got == [True]

    def test_down_interface_drops(self, sim):
        segment = Segment(sim, "lan")
        sender = _nic(sim, "a", 1)
        receiver = _nic(sim, "b", 2)
        sender.attach(segment)
        receiver.attach(segment)
        receiver.set_promiscuous(True)
        receiver.set_up(False)
        got = []
        receiver.set_handler(lambda n, f: got.append(True))
        sender.send(_frame())
        sim.run()
        assert got == []
        assert receiver.frames_dropped == 1

    def test_send_without_attachment_rejected(self, sim):
        nic = _nic(sim, "a", 1)
        with pytest.raises(InterfaceError):
            nic.send(_frame())

    def test_statistics(self, sim):
        segment = Segment(sim, "lan")
        sender = _nic(sim, "a", 1)
        receiver = _nic(sim, "b", 2)
        sender.attach(segment)
        receiver.attach(segment)
        receiver.set_promiscuous(True)
        receiver.set_handler(lambda n, f: None)
        sender.send(_frame())
        sim.run()
        assert sender.statistics()["frames_sent"] == 1
        assert receiver.statistics()["frames_received"] == 1

    def test_detach(self, sim):
        segment = Segment(sim, "lan")
        nic = _nic(sim, "a", 1)
        nic.attach(segment)
        nic.detach()
        assert nic.segment is None
        with pytest.raises(InterfaceError):
            nic.detach()


# ---------------------------------------------------------------------------
# Host
# ---------------------------------------------------------------------------


class TestHost:
    def _pair(self, sim):
        segment = Segment(sim, "lan")
        host_a = Host(
            sim, "a", MacAddress.locally_administered(1), IPv4Address.from_string("10.0.0.1")
        )
        host_b = Host(
            sim, "b", MacAddress.locally_administered(2), IPv4Address.from_string("10.0.0.2")
        )
        host_a.attach(segment)
        host_b.attach(segment)
        return host_a, host_b

    def test_arp_resolution_then_udp(self, sim):
        host_a, host_b = self._pair(sim)
        got = []
        host_b.bind_udp(7, lambda payload, remote: got.append((payload, str(remote[0]))))
        host_a.send_udp(host_b.ip, 7, 1234, b"hello over udp")
        sim.run()
        assert got == [(b"hello over udp", "10.0.0.1")]

    def test_ping_echo_reply(self, sim):
        host_a, host_b = self._pair(sim)
        replies = []
        host_a.stack.add_icmp_handler(
            lambda message, source: replies.append((message.is_reply, message.sequence))
        )
        host_a.ping(host_b.ip, identifier=7, sequence=3, payload=b"abc")
        sim.run()
        assert (True, 3) in replies

    def test_static_arp_skips_resolution(self, sim):
        host_a, host_b = self._pair(sim)
        host_a.stack.add_static_arp(host_b.ip, host_b.mac)
        got = []
        host_b.bind_udp(9, lambda payload, remote: got.append(payload))
        host_a.send_udp(host_b.ip, 9, 1, b"direct")
        sim.run()
        assert got == [b"direct"]
        # No ARP broadcast should have been needed.
        arp_frames = [
            record
            for record in sim.trace.filter(category="nic.tx")
            if "ARP" in record.detail["frame"]
        ]
        assert arp_frames == []

    def test_host_processing_adds_latency(self):
        fast = Simulator(seed=1)
        slow = Simulator(seed=1)
        results = {}
        for label, simulator, model in (
            ("fast", fast, CostModel(host_frame_cost=1e-6, host_byte_cost=0.0)),
            ("slow", slow, CostModel(host_frame_cost=2e-3, host_byte_cost=0.0)),
        ):
            segment = Segment(simulator, "lan")
            host_a = Host(
                simulator,
                "a",
                MacAddress.locally_administered(1),
                IPv4Address.from_string("10.0.0.1"),
                cost_model=model,
            )
            host_b = Host(
                simulator,
                "b",
                MacAddress.locally_administered(2),
                IPv4Address.from_string("10.0.0.2"),
                cost_model=model,
            )
            host_a.attach(segment)
            host_b.attach(segment)
            host_a.stack.add_static_arp(host_b.ip, host_b.mac)
            host_b.stack.add_static_arp(host_a.ip, host_a.mac)
            rtts = []
            host_a.stack.add_icmp_handler(
                lambda message, source, simulator=simulator: rtts.append(simulator.now)
            )
            host_a.ping(host_b.ip, 1, 1, b"x" * 64)
            simulator.run()
            results[label] = rtts[0]
        assert results["slow"] > results["fast"]

    def test_raw_listener_sees_frames(self, sim):
        host_a, host_b = self._pair(sim)
        seen = []
        host_b.add_raw_listener(lambda frame: seen.append(int(frame.ethertype)))
        host_a.stack.add_static_arp(host_b.ip, host_b.mac)
        host_a.send_udp(host_b.ip, 5, 5, b"x")
        sim.run()
        assert int(EtherType.IPV4) in seen

    def test_statistics_keys(self, sim):
        host_a, _ = self._pair(sim)
        stats = host_a.statistics()
        for key in ("frames_sent", "ip_packets_sent", "ip_packets_received"):
            assert key in stats


# ---------------------------------------------------------------------------
# NetworkBuilder
# ---------------------------------------------------------------------------


class TestNetworkBuilder:
    def test_builds_segments_and_hosts(self):
        builder = NetworkBuilder(seed=1)
        builder.add_segment("lan1")
        builder.add_host("h1", "lan1")
        builder.add_host("h2", "lan1")
        network = builder.build()
        assert set(network.segments) == {"lan1"}
        assert set(network.hosts) == {"h1", "h2"}

    def test_unique_addresses(self):
        builder = NetworkBuilder(seed=1)
        builder.add_segment("lan1")
        hosts = [builder.add_host(f"h{i}", "lan1") for i in range(10)]
        macs = {str(host.mac) for host in hosts}
        ips = {str(host.ip) for host in hosts}
        assert len(macs) == 10
        assert len(ips) == 10

    def test_duplicate_names_rejected(self):
        builder = NetworkBuilder(seed=1)
        builder.add_segment("lan1")
        with pytest.raises(TopologyError):
            builder.add_segment("lan1")
        builder.add_host("h1", "lan1")
        with pytest.raises(TopologyError):
            builder.add_host("h1", "lan1")

    def test_unknown_segment_rejected(self):
        builder = NetworkBuilder(seed=1)
        with pytest.raises(TopologyError):
            builder.add_host("h1", "nowhere")

    def test_populate_static_arp(self):
        builder = NetworkBuilder(seed=1)
        builder.add_segment("lan1")
        host1 = builder.add_host("h1", "lan1")
        host2 = builder.add_host("h2", "lan1")
        builder.populate_static_arp()
        assert host1.stack.arp_lookup(host2.ip) == host2.mac
        assert host2.stack.arp_lookup(host1.ip) == host1.mac

    def test_explicit_ip(self):
        builder = NetworkBuilder(seed=1)
        builder.add_segment("lan1")
        host = builder.add_host("h1", "lan1", ip="10.5.5.5")
        assert str(host.ip) == "10.5.5.5"

    def test_station_registration_and_lookup(self):
        builder = NetworkBuilder(seed=1)
        builder.add_segment("lan1")
        network = builder.build()
        builder.register_station("thing", object())
        assert network.station("thing") is not None
        with pytest.raises(TopologyError):
            network.station("missing")
        with pytest.raises(TopologyError):
            builder.register_station("thing", object())

    def test_network_lookup_errors(self):
        builder = NetworkBuilder(seed=1)
        network = builder.build()
        with pytest.raises(TopologyError):
            network.segment("nope")
        with pytest.raises(TopologyError):
            network.host("nope")
