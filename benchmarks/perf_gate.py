"""CI performance gate over ``BENCH_trace.json``.

The trace-overhead micro-benchmark appends one entry per run to
``BENCH_trace.json`` (the repository commits a baseline history; CI appends a
fresh entry).  This gate compares the **fresh** entry (the last one) against
the **baseline** entry (the last committed one before it) and fails when any
tracked throughput metric — emit records/second per sink, or frame-blast
frames/second per sink — regresses by more than the threshold (default 20 %).

Run after the benchmark::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --frames 20000 --skip-bounded
    python benchmarks/perf_gate.py --threshold 0.20

The gate is pure stdlib (no simulator import): it only reads the JSON file.

Caveat: the committed baseline may come from different hardware than the CI
runner, so absolute throughput can shift for reasons unrelated to the code.
The 20 % default absorbs normal runner variance; if a slow runner class trips
the gate spuriously, refresh the committed baseline from CI's own artifact
(or raise ``--threshold``) rather than chasing phantom regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_trace.json"


def collect_metrics(entry: dict) -> dict:
    """Flatten one benchmark entry into {metric name: value} for comparison.

    Frame-blast metrics are keyed by their workload size (``frames``) so a
    run at a reduced size is never ratioed against a full-size baseline —
    comparisons stay like-for-like.  (The emit micro-benchmark always uses
    the same fixed record count, so its metrics carry no size key.)
    """
    metrics = {}
    for sink, rate in (entry.get("emit_records_per_second") or {}).items():
        metrics[f"emit/{sink} records/s"] = float(rate)
    for sink, blast in (entry.get("frame_blast") or {}).items():
        rate = blast.get("frames_per_second")
        if rate is not None:
            frames = blast.get("frames", "?")
            metrics[f"blast/{sink}@{frames} frames/s"] = float(rate)
    return metrics


def compare(baseline: dict, fresh: dict, threshold: float) -> list:
    """Return [(metric, base, new, ratio, ok)] for every shared metric."""
    base_metrics = collect_metrics(baseline)
    fresh_metrics = collect_metrics(fresh)
    rows = []
    skipped = sorted(base_metrics.keys() ^ fresh_metrics.keys())
    if skipped:
        print("perf gate: metrics without a like-for-like counterpart (skipped):")
        for name in skipped:
            print(f"  ?    {name}")
    for name in sorted(base_metrics.keys() & fresh_metrics.keys()):
        base = base_metrics[name]
        new = fresh_metrics[name]
        ratio = new / base if base > 0 else float("inf")
        rows.append((name, base, new, ratio, ratio >= 1.0 - threshold))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional regression (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=RESULTS_PATH,
        help="path to the benchmark history JSON",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error("--threshold must be in (0, 1)")

    try:
        history = json.loads(args.results.read_text())
    except (OSError, ValueError) as exc:
        print(f"perf gate: cannot read {args.results}: {exc}")
        return 1
    if not isinstance(history, list) or not history:
        print(f"perf gate: {args.results} holds no benchmark entries")
        return 1
    if len(history) < 2:
        print("perf gate: no committed baseline to compare against; passing")
        return 0

    fresh = history[-1]
    baseline = history[-2]
    rows = compare(baseline, fresh, args.threshold)
    if not rows:
        print("perf gate: baseline and fresh entries share no metrics; passing")
        return 0

    width = max(len(name) for name, *_ in rows)
    failed = []
    print(
        f"perf gate: fresh ({fresh.get('timestamp', '?')}) vs "
        f"baseline ({baseline.get('timestamp', '?')}), "
        f"threshold -{args.threshold:.0%}"
    )
    for name, base, new, ratio, ok in rows:
        marker = "ok  " if ok else "FAIL"
        print(f"  {marker} {name:<{width}}  {base:>12,.0f} -> {new:>12,.0f}  ({ratio:6.2%})")
        if not ok:
            failed.append(name)
    if failed:
        print(f"perf gate: {len(failed)} metric(s) regressed more than {args.threshold:.0%}:")
        for name in failed:
            print(f"  - {name}")
        return 1
    print(f"perf gate: all {len(rows)} metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
