"""The built-in scenario catalog.

Every experimental configuration the paper's figures and tables use — the
three two-host pairs of Figures 7/8, the static-bridge ablation baseline and
the Section 7.5 ring — is registered here as a declarative factory, together
with the new families the fabric enables: a many-LAN bridge chain and the
802.1Q VLAN trunk workload.  ``list_scenarios()`` is the catalog listing; the
README's "Scenario catalog" section mirrors it.
"""

from __future__ import annotations

from typing import Tuple

from repro.lan.segment import DEFAULT_BANDWIDTH_BPS
from repro.scenario.registry import register_scenario
from repro.scenario.spec import (
    BASIC_WARMUP,
    SPANNING_TREE_WARMUP,
    DeviceSpec,
    HostSpec,
    PortSpec,
    ScenarioSpec,
    SegmentSpec,
    SwitchletSpec,
)


def _pair_segments(count: int, bandwidth_bps: float) -> Tuple[SegmentSpec, ...]:
    return tuple(
        SegmentSpec(f"lan{index + 1}", bandwidth_bps=bandwidth_bps)
        for index in range(count)
    )


@register_scenario(
    "pair/direct",
    description="two hosts on a single LAN (Figure 8's best-case baseline)",
    axes=("bandwidth_bps",),
)
def direct_pair(bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS) -> ScenarioSpec:
    return ScenarioSpec(
        name="pair/direct",
        label="direct",
        description="two hosts on one shared LAN",
        segments=_pair_segments(1, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan1")),
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "pair/repeater",
    description="two LANs joined by the C buffered repeater",
    axes=("bandwidth_bps",),
)
def repeater_pair(bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS) -> ScenarioSpec:
    return ScenarioSpec(
        name="pair/repeater",
        label="c-repeater",
        description="two LANs joined by the C buffered repeater",
        segments=_pair_segments(2, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan2")),
        devices=(
            DeviceSpec(
                "repeater",
                kind="repeater",
                ports=(PortSpec("eth0", "lan1"), PortSpec("eth1", "lan2")),
            ),
        ),
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "pair/active-bridge",
    description="two LANs joined by the active bridge running the switchlet stack",
    axes=("include_spanning_tree", "include_learning", "bandwidth_bps"),
)
def bridged_pair(
    include_spanning_tree: bool = True,
    include_learning: bool = True,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
) -> ScenarioSpec:
    stack = [SwitchletSpec("dumb-bridge")]
    if include_learning:
        stack.append(SwitchletSpec("learning-bridge"))
    if include_spanning_tree:
        stack.append(SwitchletSpec("spanning-tree", {"autostart": True}))
    return ScenarioSpec(
        name="pair/active-bridge",
        label="active-bridge",
        description="two LANs joined by the active bridge (Figure 7)",
        segments=_pair_segments(2, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan2")),
        devices=(
            DeviceSpec(
                "bridge",
                kind="active-node",
                ports=(PortSpec("eth0", "lan1"), PortSpec("eth1", "lan2")),
                switchlets=tuple(stack),
            ),
        ),
        ready_time=SPANNING_TREE_WARMUP if include_spanning_tree else BASIC_WARMUP,
    )


@register_scenario(
    "pair/static-bridge",
    description="two LANs joined by a fixed-function learning bridge (ablation baseline)",
    axes=("bandwidth_bps",),
)
def static_bridge_pair(bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS) -> ScenarioSpec:
    return ScenarioSpec(
        name="pair/static-bridge",
        label="static-bridge",
        description="two LANs joined by a DEC-LANbridge-like fixed bridge",
        segments=_pair_segments(2, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan2")),
        devices=(
            DeviceSpec(
                "lanbridge",
                kind="static-bridge",
                ports=(PortSpec("eth0", "lan1"), PortSpec("eth1", "lan2")),
            ),
        ),
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "pair/unprogrammed",
    description="two LANs joined by an unprogrammed active node (quickstart canvas)",
)
def unprogrammed_pair(bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS) -> ScenarioSpec:
    return ScenarioSpec(
        name="pair/unprogrammed",
        label="unprogrammed",
        description="an empty active node between two LANs, ready to be programmed",
        segments=_pair_segments(2, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan2")),
        devices=(
            DeviceSpec(
                "bridge",
                kind="active-node",
                ports=(PortSpec("eth0", "lan1"), PortSpec("eth1", "lan2")),
            ),
        ),
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "ring",
    description="the Section 7.5 chain of active bridges (DEC running, IEEE idle, control armed)",
    axes=("n_bridges", "bandwidth_bps", "hosts_per_segment"),
)
def ring(
    n_bridges: int = 3,
    with_control: bool = True,
    suppression_period: float = 30.0,
    validation_delay: float = 60.0,
    buggy_new_protocol: bool = False,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    hosts_per_segment: int = 0,
) -> ScenarioSpec:
    """``hosts_per_segment`` populates every LAN with end hosts — the
    wire-speed multi-LAN sweep configuration the sharded fabric is
    benchmarked on (local per-segment traffic, bridges carrying the
    spanning-tree control plane across shards)."""
    if n_bridges < 1:
        raise ValueError("a ring needs at least one bridge")
    if hosts_per_segment < 0:
        raise ValueError("hosts_per_segment cannot be negative")
    segments = tuple(
        SegmentSpec(f"seg{index}", bandwidth_bps=bandwidth_bps)
        for index in range(n_bridges + 1)
    )
    hosts = tuple(
        HostSpec(f"seg{index}h{host + 1}", f"seg{index}")
        for index in range(n_bridges + 1)
        for host in range(hosts_per_segment)
    )
    stack = [
        SwitchletSpec("dumb-bridge"),
        SwitchletSpec("learning-bridge"),
        SwitchletSpec("dec-spanning-tree"),
        SwitchletSpec("spanning-tree", {"autostart": False, "buggy": buggy_new_protocol}),
    ]
    if with_control:
        stack.append(
            SwitchletSpec(
                "control",
                {
                    "suppression_period": suppression_period,
                    "validation_delay": validation_delay,
                },
            )
        )
    devices = tuple(
        DeviceSpec(
            f"bridge{index + 1}",
            kind="active-node",
            ports=(
                PortSpec("eth0", f"seg{index}"),
                PortSpec("eth1", f"seg{index + 1}"),
            ),
            switchlets=tuple(stack),
        )
        for index in range(n_bridges)
    )
    return ScenarioSpec(
        name="ring",
        label="ring",
        description="chain of active bridges between two end segments",
        segments=segments,
        hosts=hosts,
        devices=devices,
        ready_time=SPANNING_TREE_WARMUP,
    )


@register_scenario(
    "chain",
    description="two hosts at the ends of a chain of learning bridges (many-LAN scaling)",
    axes=("n_bridges", "bandwidth_bps"),
)
def chain(
    n_bridges: int = 2,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
) -> ScenarioSpec:
    if n_bridges < 1:
        raise ValueError("a chain needs at least one bridge")
    segments = tuple(
        SegmentSpec(f"seg{index}", bandwidth_bps=bandwidth_bps)
        for index in range(n_bridges + 1)
    )
    devices = tuple(
        DeviceSpec(
            f"bridge{index + 1}",
            kind="active-node",
            ports=(
                PortSpec("eth0", f"seg{index}"),
                PortSpec("eth1", f"seg{index + 1}"),
            ),
            switchlets=(
                SwitchletSpec("dumb-bridge"),
                SwitchletSpec("learning-bridge"),
            ),
        )
        for index in range(n_bridges)
    )
    return ScenarioSpec(
        name="chain",
        label="chain",
        description="hosts at the ends of a loop-free bridge chain",
        segments=segments,
        hosts=(HostSpec("left", "seg0"), HostSpec("right", f"seg{n_bridges}")),
        devices=devices,
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "vlan/trunk",
    description="802.1Q VLAN bridges joined by a tagged trunk; per-VLAN isolation",
    axes=("n_vlans", "hosts_per_vlan", "n_switches", "bandwidth_bps"),
)
def vlan_trunk(
    n_vlans: int = 2,
    hosts_per_vlan: int = 1,
    n_switches: int = 2,
    vlan_base: int = 10,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    native_vlan: int = 0,
) -> ScenarioSpec:
    """``native_vlan`` (a VLAN id, 0 = none) makes that VLAN travel the
    trunk untagged — the 802.1Q native-VLAN interoperability configuration."""
    if n_vlans < 1:
        raise ValueError("a VLAN scenario needs at least one VLAN")
    if n_switches < 2:
        raise ValueError("a trunk scenario needs at least two switches")
    if hosts_per_vlan < 1:
        raise ValueError("each VLAN needs at least one host per switch")
    vlans = tuple(vlan_base * (index + 1) for index in range(n_vlans))
    segments = []
    hosts = []
    devices = []
    for switch in range(1, n_switches + 1):
        for vlan in vlans:
            segment_name = f"sw{switch}-v{vlan}"
            segments.append(SegmentSpec(segment_name, bandwidth_bps=bandwidth_bps))
            for index in range(hosts_per_vlan):
                hosts.append(
                    HostSpec(f"h{switch}v{vlan}n{index + 1}", segment_name, vlan=vlan)
                )
    segments.append(SegmentSpec("trunk", bandwidth_bps=bandwidth_bps))
    for switch in range(1, n_switches + 1):
        ports = [
            PortSpec(f"eth{index}", f"sw{switch}-v{vlan}", mode="access", vlan=vlan)
            for index, vlan in enumerate(vlans)
        ]
        ports.append(
            PortSpec(
                f"eth{n_vlans}",
                "trunk",
                mode="trunk",
                allowed_vlans=vlans,
                native_vlan=native_vlan if native_vlan else None,
            )
        )
        devices.append(
            DeviceSpec(
                f"switch{switch}",
                kind="active-node",
                ports=tuple(ports),
                switchlets=(
                    SwitchletSpec("dumb-bridge"),
                    SwitchletSpec("vlan-bridge"),
                ),
            )
        )
    return ScenarioSpec(
        name="vlan/trunk",
        label="vlan-trunk",
        description="VLAN-aware bridges, access segments per VLAN, one 802.1Q trunk",
        segments=tuple(segments),
        hosts=tuple(hosts),
        devices=tuple(devices),
        ready_time=BASIC_WARMUP,
    )
