"""The declarative scenario fabric: specs, compilation, registry, matrix.

Covers the three properties the fabric promises:

* **spec → network compilation** — a declarative spec produces exactly the
  topology it describes (segments, hosts, devices, switchlet stacks, port
  parameters);
* **deterministic sweep expansion** — the matrix expander yields the same
  family in the same order every time;
* **wrapper-vs-legacy equivalence** — the thin wrapper builders produce
  measurements bit-identical to the hand-written builder code they replaced.
"""

from __future__ import annotations

import pytest

from repro.costs.model import CostModel
from repro.lan.topology import NetworkBuilder
from repro.measurement.ping import PingRunner, ping_sweep
from repro.measurement.setups import (
    BASIC_WARMUP,
    build_bridged_pair,
    build_direct_pair,
    build_ring,
)
from repro.scenario import (
    DeviceSpec,
    HostSpec,
    PortSpec,
    ScenarioSpec,
    SegmentSpec,
    SwitchletSpec,
    expand_matrix,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_matrix,
    run_scenario,
)
from repro.switchlets.packaging import (
    dumb_bridge_package,
    learning_bridge_package,
)


class TestSpecValidation:
    def test_duplicate_component_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSpec(
                name="bad",
                segments=(SegmentSpec("lan1"), SegmentSpec("lan1")),
            )

    def test_host_on_unknown_segment_rejected(self):
        with pytest.raises(ValueError, match="unknown segment"):
            ScenarioSpec(
                name="bad",
                segments=(SegmentSpec("lan1"),),
                hosts=(HostSpec("h1", "lan9"),),
            )

    def test_unknown_device_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            ScenarioSpec(
                name="bad",
                segments=(SegmentSpec("lan1"),),
                devices=(DeviceSpec("d", kind="router"),),
            )

    def test_unknown_port_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            ScenarioSpec(
                name="bad",
                segments=(SegmentSpec("lan1"),),
                devices=(
                    DeviceSpec("d", ports=(PortSpec("eth0", "lan1", mode="hybrid"),)),
                ),
            )


class TestCompilation:
    def test_spec_compiles_to_declared_topology(self):
        spec = ScenarioSpec(
            name="t/compile",
            segments=(
                SegmentSpec("fast", bandwidth_bps=1e9),
                SegmentSpec("slow", bandwidth_bps=1e7, propagation_delay=5e-6),
            ),
            hosts=(HostSpec("a", "fast"), HostSpec("b", "slow", ip="10.0.0.77")),
            devices=(
                DeviceSpec(
                    "br",
                    kind="active-node",
                    ports=(PortSpec("eth0", "fast"), PortSpec("eth1", "slow")),
                    switchlets=(
                        SwitchletSpec("dumb-bridge"),
                        SwitchletSpec("learning-bridge"),
                    ),
                ),
            ),
        )
        run = run_scenario(spec, seed=3)
        assert set(run.network.segments) == {"fast", "slow"}
        assert run.segment("fast").bandwidth_bps == 1e9
        assert run.segment("slow").propagation_delay == 5e-6
        assert str(run.host("b").ip) == "10.0.0.77"
        bridge = run.device("br")
        assert sorted(bridge.interfaces) == ["eth0", "eth1"]
        assert bridge.loader.loaded_names() == ["dumb-bridge", "learning-bridge"]
        # Declaration order is preserved by the accessors.
        assert [h.name for h in run.hosts] == ["a", "b"]
        assert [d.name for d in run.devices] == ["br"]

    def test_unknown_switchlet_name_fails_at_compile(self):
        spec = ScenarioSpec(
            name="t/unknown-switchlet",
            segments=(SegmentSpec("lan1"),),
            devices=(
                DeviceSpec(
                    "br",
                    ports=(PortSpec("eth0", "lan1"),),
                    switchlets=(SwitchletSpec("quantum-bridge"),),
                ),
            ),
        )
        with pytest.raises(ValueError, match="unknown switchlet"):
            run_scenario(spec)

    def test_as_pair_requires_two_hosts(self):
        run = run_scenario("ring", params={"n_bridges": 1})
        with pytest.raises(ValueError, match="pair"):
            run.as_pair()

    def test_ready_time_and_warm_up(self):
        run = run_scenario("pair/direct")
        assert run.ready_time == BASIC_WARMUP
        run.warm_up()
        assert run.sim.now >= BASIC_WARMUP


class TestRegistry:
    def test_get_scenario_records_params_and_suffixes_name(self):
        spec = get_scenario("ring", n_bridges=5)
        assert spec.name == "ring[n_bridges=5]"
        assert spec.params["n_bridges"] == 5
        assert len(spec.devices) == 5

    def test_unknown_scenario_name(self):
        with pytest.raises(KeyError, match="no scenario named"):
            get_scenario("pair/warp-drive")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("pair/direct", lambda: None)

    def test_catalog_lists_the_paper_scenarios(self):
        names = {entry.name for entry in list_scenarios()}
        assert {
            "pair/direct",
            "pair/repeater",
            "pair/active-bridge",
            "pair/static-bridge",
            "ring",
            "vlan/trunk",
        } <= names


class TestMatrixExpansion:
    def test_expansion_is_deterministic(self):
        axes = {"n_bridges": [1, 3], "bandwidth_bps": [1e7, 1e8]}
        first = expand_matrix("ring", axes)
        second = expand_matrix("ring", axes)
        assert [spec.name for spec in first] == [spec.name for spec in second]
        assert [spec.params for spec in first] == [spec.params for spec in second]
        # Cartesian product in axis order: first axis varies slowest.
        assert [spec.params["n_bridges"] for spec in first] == [1, 1, 3, 3]
        assert [spec.params["bandwidth_bps"] for spec in first] == [1e7, 1e8, 1e7, 1e8]

    def test_typoed_axis_is_rejected_up_front(self):
        with pytest.raises(ValueError, match=r"unknown axes \['n_bridge'\]"):
            expand_matrix("ring", {"n_bridge": [1, 3]})
        with pytest.raises(ValueError, match="unknown axes"):
            expand_matrix("ring", {"n_bridges": [1]}, base_params={"bandwith": 1e7})

    def test_expansion_applies_axis_values(self):
        specs = expand_matrix("chain", {"n_bridges": [2, 4]})
        assert [len(spec.devices) for spec in specs] == [2, 4]
        for spec in specs:
            assert spec.segments[0].bandwidth_bps == 1e8

    def test_run_matrix_compiles_every_point(self):
        rtts = []
        for run in run_matrix("chain", {"n_bridges": [1, 2]}, seed=9):
            left, right = run.host("left"), run.host("right")
            runner = PingRunner(
                run.sim, left, right.ip, payload_size=64, count=2, interval=0.05
            )
            result = runner.run(start_time=run.ready_time)
            assert result.received == result.sent == 2
            rtts.append(result.mean_rtt_ms())
        # Every extra bridge hop adds per-frame software cost.
        assert rtts[1] > rtts[0]


class TestWrapperLegacyEquivalence:
    """The wrappers reproduce the hand-written builders bit-for-bit."""

    def _legacy_direct(self, seed):
        # The pre-fabric body of build_direct_pair, verbatim.
        builder = NetworkBuilder(seed=seed)
        builder.add_segment("lan1")
        left = builder.add_host("host1", "lan1")
        right = builder.add_host("host2", "lan1")
        builder.populate_static_arp()
        network = builder.build()
        return network, left, right

    def test_direct_pair_ping_identical(self):
        network, left, right = self._legacy_direct(seed=11)
        legacy = ping_sweep(
            network.sim, left, right.ip, [64, 512], start_time=BASIC_WARMUP, count=4
        )
        setup = build_direct_pair(seed=11)
        fabric = ping_sweep(
            setup.network.sim,
            setup.left,
            setup.right.ip,
            [64, 512],
            start_time=setup.ready_time,
            count=4,
        )
        for size in (64, 512):
            assert fabric[size].rtts == legacy[size].rtts

    def test_bridged_pair_ping_identical(self):
        # The pre-fabric body of build_bridged_pair(include_spanning_tree=False).
        from repro.core.node import ActiveNode

        seed = 12
        builder = NetworkBuilder(seed=seed)
        builder.add_segment("lan1")
        builder.add_segment("lan2")
        left = builder.add_host("host1", "lan1")
        right = builder.add_host("host2", "lan2")
        builder.populate_static_arp()
        network = builder.build()
        bridge = ActiveNode(network.sim, "bridge", cost_model=network.cost_model)
        bridge.add_interface("eth0", network.segment("lan1"))
        bridge.add_interface("eth1", network.segment("lan2"))
        environment = bridge.environment.modules
        bridge.load_switchlet(dumb_bridge_package(environment))
        bridge.load_switchlet(learning_bridge_package(environment))
        legacy = ping_sweep(
            network.sim, left, right.ip, [128, 1024], start_time=BASIC_WARMUP, count=4
        )

        setup = build_bridged_pair(seed=seed, include_spanning_tree=False)
        fabric = ping_sweep(
            setup.network.sim,
            setup.left,
            setup.right.ip,
            [128, 1024],
            start_time=setup.ready_time,
            count=4,
        )
        for size in (128, 1024):
            assert fabric[size].rtts == legacy[size].rtts

    def test_wrappers_keep_legacy_labels_and_interfaces(self):
        assert build_direct_pair().label == "direct"
        assert build_bridged_pair(include_spanning_tree=False).label == "active-bridge"
        ring = build_ring(n_bridges=2, seed=1)
        assert [b.name for b in ring.bridges] == ["bridge1", "bridge2"]
        assert ring.left_segment.name == "seg0"
        assert ring.right_segment.name == "seg2"
        with pytest.raises(ValueError, match="at least one bridge"):
            build_ring(n_bridges=0)

    def test_cost_model_is_shared_through_the_fabric(self):
        model = CostModel().with_native_code(10.0)
        setup = build_bridged_pair(
            seed=2, cost_model=model, include_spanning_tree=False
        )
        assert setup.device.costs is model
        assert setup.network.cost_model is model
