"""The first switchlet: a minimal "dumb" bridge (buffered repeater).

Section 5.3: "The first, lowest level switchlet implements a minimal 'dumb'
bridge.  It has three parts.  Part one is a function that reads an input
packet from a queue and sends it out through a given network interface.
Part two is a function that takes an input packet and queues it to all
network interfaces except for the one on which it was received.  Part three
is a function that reads packets from a network interface and demultiplexes
them to the functions from part two."

"This switchlet is actually performing the function of a buffered repeater.
It cannot tolerate a network topology with any loops ..."

:class:`DumbBridgeApp` implements those three parts against the thinned
environment, and additionally registers the *access points* later switchlets
build on:

* ``"bridge.switch"`` — the switching function (part two); the learning
  switchlet replaces this registration,
* ``"bridge.send_out"`` — send raw frame bytes out of a named port,
* ``"bridge.ports"`` — the list of port names,
* ``"bridge.set_port_filter"`` — install a predicate that can suppress
  traffic per (input port, output port); the spanning-tree switchlet uses it
  to block ports that are not on the tree,
* ``"bridge.stats"`` — forwarding counters.
"""

from __future__ import annotations

from repro.switchlets.framefmt import FrameFmt


class DumbBridgeApp:
    """The dumb bridge / buffered repeater switchlet application.

    Args:
        unixnet: the thinned ``Unixnet`` module.
        func: the thinned ``Func`` registry module.
        log: the thinned ``Log`` module.
    """

    #: Express-lane safety declaration consumed by the scenario compiler
    #: (see repro.scenario.compile): the dumb bridge reaches the wire only
    #: through unixnet writes, which ride the node's CPU queue — its
    #: reactions never escape a segment synchronously, so the node's ports
    #: keep their ``segment_local`` declaration with this switchlet loaded.
    SEGMENT_LOCAL_SAFE = True

    SWITCH_KEY = "bridge.switch"
    SEND_OUT_KEY = "bridge.send_out"
    PORTS_KEY = "bridge.ports"
    FILTER_KEY = "bridge.set_port_filter"
    STATS_KEY = "bridge.stats"

    def __init__(self, unixnet, func, log):
        self.unixnet = unixnet
        self.func = func
        self.log = log
        self.iports = {}
        self.oports = {}
        self.port_filter = None
        self.running = False
        self.frames_handled = 0
        self.frames_flooded = 0
        self.frames_suppressed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Bind every interface for input and output and begin repeating."""
        if self.running:
            return
        names = list(self.unixnet.interface_names())
        for name in names:
            iport = self.unixnet.bind_in(name)
            oport = self.unixnet.iport_to_oport(iport)
            self.iports[name] = iport
            self.oports[name] = oport
            # Part three: the per-port reader hands packets to the switch
            # function looked up through Func, so later switchlets can
            # replace the switching behaviour without touching the readers.
            self.unixnet.set_handler_in(iport, self._make_reader(name))
        self._register()
        self.running = True
        self.log.log("dumb bridge started on ports: %s" % ", ".join(sorted(self.iports)))

    def _register(self):
        self.func.register(self.SWITCH_KEY, self.switch)
        self.func.register(self.SEND_OUT_KEY, self.send_out)
        self.func.register(self.PORTS_KEY, self.ports)
        self.func.register(self.FILTER_KEY, self.set_port_filter)
        self.func.register(self.STATS_KEY, self.stats)

    def _make_reader(self, port_name):
        def reader(packet):
            switch = self.func.lookup(self.SWITCH_KEY)
            switch(port_name, packet.pkt)

        return reader

    # ------------------------------------------------------------------
    # Part one: send a packet out of a given interface
    # ------------------------------------------------------------------

    def send_out(self, port_name, pkt_bytes):
        """Send raw frame bytes out of the named port (access point)."""
        oport = self.oports.get(port_name)
        if oport is None:
            raise KeyError("no such output port: %r" % (port_name,))
        return self.unixnet.send_pkt_out(oport, pkt_bytes, 0, len(pkt_bytes), None)

    # ------------------------------------------------------------------
    # Part two: the switching function (flood to all other ports)
    # ------------------------------------------------------------------

    def switch(self, in_port, pkt_bytes):
        """Queue the packet to every port except the one it arrived on."""
        self.frames_handled += 1
        flooded = 0
        for out_port in self.oports:
            if out_port == in_port:
                continue
            if not self._allowed(in_port, out_port):
                self.frames_suppressed += 1
                continue
            self.send_out(out_port, pkt_bytes)
            flooded += 1
        if flooded:
            self.frames_flooded += 1

    def _allowed(self, in_port, out_port):
        if self.port_filter is None:
            return True
        return bool(self.port_filter(in_port, out_port))

    # ------------------------------------------------------------------
    # Access points
    # ------------------------------------------------------------------

    def ports(self):
        """The port names this bridge is repeating between."""
        return sorted(self.iports)

    def set_port_filter(self, predicate):
        """Install (or clear, with ``None``) the per-port forwarding filter."""
        self.port_filter = predicate

    def stats(self):
        """Forwarding counters."""
        return {
            "frames_handled": self.frames_handled,
            "frames_flooded": self.frames_flooded,
            "frames_suppressed": self.frames_suppressed,
        }


#: Source epilogue executed when this switchlet is loaded into a node: it
#: instantiates the application, starts it, and registers the instance so the
#: node (and later switchlets) can find it.
REGISTRATION_SOURCE = """
_app = DumbBridgeApp(Unixnet, Func, Log)
_app.start()
Func.register("switchlet.dumb-bridge", _app)
"""

#: The classes whose source is shipped inside the dumb-bridge switchlet.
PACKAGED_COMPONENTS = (FrameFmt, DumbBridgeApp)
