"""Discrete-event simulation kernel.

Everything in the reproduction runs on top of this small kernel: a
monotonically increasing simulated clock, a priority queue of events, timers,
and a few conveniences (cooperative processes, deterministic randomness, and
an event trace used by the measurement tools).

The kernel is deliberately simple — the paper's node is an event-driven
user-space program, and this kernel gives us exactly the "wake up, handle a
frame, go back to sleep" structure of that program with reproducible timing.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue
from repro.sim.engine import Simulator
from repro.sim.fabric import FabricTrace, ShardedSimulator
from repro.sim.shard import EngineShard, ShardQueue, ShardTraceRecorder
from repro.sim.timers import Timer, PeriodicTimer
from repro.sim.process import Process
from repro.sim.random_source import RandomSource
from repro.sim.trace import (
    CountingSink,
    ListSink,
    NullSink,
    RingBufferSink,
    TraceRecord,
    TraceRecorder,
    TraceSink,
)

__all__ = [
    "Clock",
    "EngineShard",
    "Event",
    "EventQueue",
    "FabricTrace",
    "ShardQueue",
    "ShardTraceRecorder",
    "ShardedSimulator",
    "Simulator",
    "Timer",
    "PeriodicTimer",
    "Process",
    "RandomSource",
    "TraceRecorder",
    "TraceRecord",
    "TraceSink",
    "ListSink",
    "RingBufferSink",
    "CountingSink",
    "NullSink",
]
