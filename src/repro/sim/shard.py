"""The per-shard scheduling core of the sharded event fabric.

:class:`EngineShard` is one shard of a
:class:`~repro.sim.fabric.ShardedSimulator`: it owns its own event ring
(:class:`ShardQueue`), its own progress cursor and its own trace stream
(:class:`ShardTraceRecorder`), and it duck-types the
:class:`~repro.sim.engine.Simulator` scheduling API (``now``, ``schedule``,
``schedule_at``, ``schedule_at_ns``, ``call_soon``, ``trace``, ``random``,
``clock``) so every existing component — segments, NICs, hosts, active nodes,
CPU queues, timers — runs on a shard unchanged.

Three shared pieces of state make the fabric *bit-deterministic* relative to
the single engine when it runs in strict mode:

* one **event-sequence counter** shared by every shard queue, so
  ``(time_ns, sequence)`` stays a global total order exactly as in the single
  :class:`~repro.sim.engine.EventQueue`;
* one **clock**, advanced by the coordinator strictly in that global order,
  so a component called synchronously across a shard boundary (a NIC sending
  onto a segment homed on another shard) reads the same timestamps it would
  under the single engine;
* one **trace emission counter**, stamped onto every record
  (:attr:`~repro.sim.trace.TraceRecord.seq`), which is the deterministic
  merge key that interleaves per-shard trace streams back into the exact
  single-engine emission order.

**Emission-seq ordering invariant.**  Because the emission counter is shared
and monotone, every *per-shard* stream is seq-ascending in both execution
modes.  Strict mode additionally makes the seq a global emission order (the
``FabricTrace`` merge key).  Relaxed mode (:mod:`repro.sim.relaxed`) gives
that up — shards execute windows out of global order, so only the per-shard
monotonicity survives — and the canonical merge key becomes ``(time,
shard_id, position-in-stream)``; :meth:`EngineShard._run_window` is the
relaxed drain loop, which swaps in a **private per-shard clock** so shards
can sit at different simulated times inside one lookahead window.

The queue is a *bucketed event ring* rather than one binary heap: events at
the same nanosecond live in one FIFO bucket (append order equals sequence
order because the counter is shared and monotone), so pushes are O(1) list
appends and the small time-heap is touched once per distinct timestamp.
Workloads in this simulator cluster heavily on identical timestamps
(synchronized segments, zero-cost CPU batches), which is what amortizes heap
traffic on the fabric's hot path.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Optional

from repro.sim.clock import Clock, NANOSECONDS_PER_SECOND, seconds_to_ns
from repro.sim.events import Event, validate_schedule_time
from repro.sim.random_source import RandomSource
from repro.sim.relaxed import _ACTIVE
from repro.sim.trace import (
    CountingSink,
    DetailSource,
    TraceRecord,
    TraceRecorder,
    TraceSink,
    last_match,
    match_records,
)


#: Upper bound on recycled bucket lists kept per :class:`ShardQueue` — a
#: backstop so a momentary burst of distinct timestamps cannot pin an
#: unbounded pile of empty lists for the rest of a long run.
_BUCKET_FREE_CAP = 1024


class ShardQueue:
    """A bucketed event ring: FIFO buckets per timestamp plus a time heap.

    Events in one bucket fire in append order, which equals sequence order
    because every shard queue draws from the fabric's shared counter.  The
    heap only orders *distinct* timestamps, so scheduling N same-time events
    costs N list appends plus one heap push.

    Bucket entries are ``(sequence, callback, event_or_None)`` triples: the
    cancellable scheduling APIs attach an :class:`Event` handle, while the
    fire-and-forget path (``schedule_fire``, used by the frame hot path for
    deliveries that are never cancelled) skips the handle allocation
    entirely.

    Cancelled events stay in their bucket (keeping :meth:`Event.cancel` O(1),
    as in the single-engine queue) and are discarded when they reach the
    bucket head; :attr:`cancelled_discarded` counts them.

    Drained bucket lists are recycled through a bounded free list
    (:attr:`_free`): a steady-state run churns through one bucket per
    distinct timestamp, and reusing the list objects removes that
    allocation from the scheduling hot path.  Recycling touches only
    *empty* lists, so event ordering and contents are untouched — the
    bit-identity suites hold verbatim.
    """

    __slots__ = (
        "_counter",
        "_buckets",
        "_times",
        "_free",
        "_live",
        "_dead",
        "cancelled_discarded",
    )

    def __init__(self, counter) -> None:
        self._counter = counter
        self._buckets: dict = {}
        self._times: list = []
        self._free: list = []
        self._live = 0
        self._dead = 0
        self.cancelled_discarded = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time_ns: int, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at ``time_ns`` and return a cancellable event."""
        event = Event(time_ns, next(self._counter), callback, label, False, self)
        entry = (event.sequence, callback, event)
        bucket = self._buckets.get(time_ns)
        if bucket is None:
            free = self._free
            self._buckets[time_ns] = bucket = free.pop() if free else []
            bucket.append(entry)
            heapq.heappush(self._times, time_ns)
        else:
            bucket.append(entry)
        self._live += 1
        return event

    def push_fire(self, time_ns: int, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` with no cancellation handle; returns its sequence."""
        sequence = next(self._counter)
        entry = (sequence, callback, None)
        bucket = self._buckets.get(time_ns)
        if bucket is None:
            free = self._free
            self._buckets[time_ns] = bucket = free.pop() if free else []
            bucket.append(entry)
            heapq.heappush(self._times, time_ns)
        else:
            bucket.append(entry)
        self._live += 1
        return sequence

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._dead += 1

    def top_key(self) -> Optional[tuple]:
        """``(time_ns, sequence)`` of the earliest live event, or ``None``.

        Skips (and physically discards) cancelled events at bucket heads and
        drops drained buckets on the way.
        """
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            # Skip cancelled heads by index, then drop them in one slice —
            # a bucket of k dead same-time timers costs O(k), not O(k^2).
            index = 0
            size = len(bucket)
            while index < size:
                entry = bucket[index]
                event = entry[2]
                if event is None or not event.cancelled:
                    break
                index += 1
            if index:
                del bucket[:index]
                self.cancelled_discarded += index
                self._dead -= index
            if bucket:
                entry = bucket[0]
                return (t, entry[0])
            heapq.heappop(times)
            del buckets[t]
            free = self._free
            if len(free) < _BUCKET_FREE_CAP:
                free.append(bucket)
        return None

    def peek_time_ns(self) -> Optional[int]:
        """Firing time of the earliest live event, if any."""
        key = self.top_key()
        return None if key is None else key[0]

    def pop(self) -> Optional[tuple]:
        """Pop the earliest live ``(sequence, callback, event)`` entry."""
        key = self.top_key()
        if key is None:
            return None
        bucket = self._buckets[key[0]]
        entry = bucket.pop(0)
        self._live -= 1
        if entry[2] is not None:
            entry[2]._queue = None
        return entry

    def clear(self) -> None:
        """Drop every pending event."""
        for bucket in self._buckets.values():
            for entry in bucket:
                if entry[2] is not None:
                    entry[2]._queue = None
        self._buckets.clear()
        self._times.clear()
        self._live = 0
        self._dead = 0


class ShardTraceRecorder(TraceRecorder):
    """One shard's trace stream, stamped with the fabric's global merge keys.

    Differences from the plain :class:`TraceRecorder`:

    * the per-``(category, source)`` counters are the **fabric-shared**
      :class:`CountingSink`, so live counter reads (``CounterWindow``,
      :meth:`count`) see the whole fabric, identically to the single engine;
    * every record is stamped with the shared emission sequence
      (:attr:`TraceRecord.seq`) — the deterministic merge key;
    * with no caller-supplied sinks the shard keeps its stream as a flat list
      of tuples and materializes :class:`TraceRecord` objects lazily on first
      query, keeping the emit hot path to one append;
    * caller-supplied sinks are *shared across shards* (the fabric passes the
      same instances to every shard), so a bounded
      :class:`~repro.sim.trace.RingBufferSink` sees the globally merged
      stream in emission order, exactly like under the single engine.
    """

    def __init__(
        self,
        clock: Clock,
        shard_index: int,
        shared_counters: CountingSink,
        emit_counter,
        sinks: Optional[List[TraceSink]] = None,
    ) -> None:
        self._clock = clock
        self._enabled = True
        self._listeners: list = []
        self._disabled_categories: set = set()
        self._shared_counters = shared_counters
        self.shard_index = shard_index
        self._emit_counter = emit_counter
        # Fast path: tuple buffer, materialized lazily.  Slow path: shared sinks.
        self._fast: Optional[list] = [] if sinks is None else None
        self._fast_append = self._fast.append if self._fast is not None else None
        self._emit_next = emit_counter.__next__
        self._materialized: list = []
        self._pairs_synced = 0
        # The fabric installs a fabric-wide counter sync here; a standalone
        # recorder falls back to syncing just its own stream.
        self._sync_all: Optional[Callable[[], None]] = None
        self._sinks: List[TraceSink] = list(sinks) if sinks is not None else []
        self._primary: Optional[TraceSink] = None
        self._refresh_primary()

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------

    def emit(
        self, source: str, category: str, detail: DetailSource = None
    ) -> Optional[TraceRecord]:
        if not self._enabled or category in self._disabled_categories:
            return None
        append = self._fast_append
        if append is not None:
            # One append; the (category, source) counters catch up lazily on
            # the next counter read (reads happen between trials, not per
            # record), so live counter queries still see exact totals.
            append(
                (self._clock._now_s, source, category, detail, self._emit_next())
            )
            if self._listeners or self._sinks:
                entry = self._record_at(len(self._fast) - 1)
                for sink in self._sinks:
                    sink.accept(entry)
                for listener in self._listeners:
                    listener(entry)
                return entry
            return None
        pair = (category, source)
        by_pair = self._shared_counters.by_category_source
        by_pair[pair] = by_pair.get(pair, 0) + 1
        entry = TraceRecord(
            self._clock._now_s, source, category, detail, self._emit_next()
        )
        for sink in self._sinks:
            sink.accept(entry)
        for listener in self._listeners:
            listener(entry)
        return entry

    # ------------------------------------------------------------------
    # Deferred counter aggregation
    # ------------------------------------------------------------------

    @property
    def counters(self) -> CountingSink:
        """The fabric-shared live counters (synced with this stream on read)."""
        sync_all = self._sync_all
        if sync_all is not None:
            sync_all()
        else:
            self._sync_own_counters()
        return self._shared_counters

    def _sync_own_counters(self) -> None:
        """Fold this stream's unsynced records into the shared pair table."""
        fast = self._fast
        if fast is None:
            return
        synced = self._pairs_synced
        total = len(fast)
        if synced == total:
            return
        by_pair = self._shared_counters.by_category_source
        for index in range(synced, total):
            entry = fast[index]
            pair = (entry[2], entry[1])
            by_pair[pair] = by_pair.get(pair, 0) + 1
        self._pairs_synced = total

    # ------------------------------------------------------------------
    # Materialization and queries (off the hot path)
    # ------------------------------------------------------------------

    def _record_at(self, index: int) -> TraceRecord:
        self._materialize_upto(index + 1)
        return self._materialized[index]

    def _materialize_upto(self, count: int) -> None:
        fast = self._fast
        materialized = self._materialized
        for i in range(len(materialized), count):
            time, source, category, detail, seq = fast[i]
            materialized.append(TraceRecord(time, source, category, detail, seq))

    def records_list(self) -> List[TraceRecord]:
        """This shard's retained records, in emission order (seq ascending)."""
        if self._fast is not None:
            self._materialize_upto(len(self._fast))
            return self._materialized
        if self._primary is None:
            return []
        return list(self._primary)  # type: ignore[arg-type]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records_list())

    def filter(self, category=None, source=None, since=None, until=None):
        return match_records(
            self.records_list(), category=category, source=source,
            since=since, until=until,
        )

    def last(self, category=None, source=None):
        return last_match(self.records_list(), category=category, source=source)

    def clear(self) -> None:
        """Drop this shard's retained records (shared counters are cleared by
        the fabric, which owns them)."""
        if self._fast is not None:
            self._fast.clear()
        self._materialized.clear()
        self._pairs_synced = 0


class EngineShard:
    """One shard of the fabric: a Simulator-compatible scheduling core.

    Components constructed "on" a shard use it exactly as they would use a
    :class:`~repro.sim.engine.Simulator`; the coordinating
    :class:`~repro.sim.fabric.ShardedSimulator` drives every shard's ring in
    the global ``(time_ns, sequence)`` order.

    Attributes:
        index: the shard's position in the fabric.
        cursor_ns: the shard's own progress cursor — the firing time of the
            last event this shard dispatched.  Always ``<=`` the fabric
            clock; per-shard lag is what the conservative synchronizer
            reasons about.
        cross_pushes: events other shards (or the facade) scheduled into this
            shard's ring — cross-shard frame handoffs land here.
    """

    def __init__(
        self,
        fabric,
        index: int,
        clock: Clock,
        random: RandomSource,
        counter,
        trace: ShardTraceRecorder,
    ) -> None:
        self.fabric = fabric
        self.index = index
        self.clock = clock
        self.random = random
        self.trace = trace
        self._queue = ShardQueue(counter)
        self._dispatched = 0
        self.cursor_ns = 0
        self.cross_pushes = 0
        # Relaxed-mode state: the shard's private clock (swapped in for the
        # duration of a relaxed dispatch so shards can sit at different
        # simulated times), its cross-shard outbox (single-writer mailbox,
        # flushed at window barriers), the active run's horizon (read by the
        # segment express lane) and the mode flag components test.
        self._own_clock = Clock()
        self.outbox: list = []
        self._until_ns = 0
        self.relaxed = False
        # Hot-path aliases into the queue (its containers are mutated in
        # place, never reassigned, so the aliases stay valid across clear()).
        self._q_buckets = self._queue._buckets
        self._q_times = self._queue._times
        self._q_next_seq = counter.__next__

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds (the fabric-wide clock)."""
        return self.clock._now_s

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds (the fabric-wide clock)."""
        return self.clock._now_ns

    @property
    def pending_events(self) -> int:
        """Live events waiting in this shard's ring (O(1))."""
        return len(self._queue)

    def auto_station_id(self, base: int) -> int:
        """Allocate the next automatic station id (fabric-wide namespace).

        Delegates to the fabric so stations on different shards never collide
        and allocation order matches the single engine's build sequence.
        """
        return self.fabric.auto_station_id(base)

    @property
    def events_dispatched(self) -> int:
        """Events this shard has dispatched."""
        return self._dispatched

    # ------------------------------------------------------------------
    # Scheduling (Simulator-compatible)
    # ------------------------------------------------------------------

    def schedule_at_ns(
        self, when_ns: int, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute time ``when_ns`` on this shard."""
        clock_now = self.clock._now_ns
        if when_ns < clock_now:
            validate_schedule_time(clock_now, when_ns)
        event = self._queue.push(when_ns, callback, label)
        fabric = self.fabric
        if fabric._active is not None and fabric._active is not self:
            fabric._note_cross_push(self, when_ns, event.sequence)
        return event

    def schedule(
        self, delay_seconds: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay_seconds`` from now.

        Inlined push: this is the fabric's hottest scheduling entry point
        (CPU queues and timers), so it pays neither the ``schedule_at_ns``
        nor the ``ShardQueue.push`` call.
        """
        when_ns = self.clock._now_ns + round(delay_seconds * NANOSECONDS_PER_SECOND)
        if when_ns < self.clock._now_ns:
            validate_schedule_time(self.clock._now_ns, when_ns)
        queue = self._queue
        event = Event(when_ns, self._q_next_seq(), callback, label, False, queue)
        buckets = self._q_buckets
        bucket = buckets.get(when_ns)
        if bucket is None:
            free = queue._free
            buckets[when_ns] = bucket = free.pop() if free else []
            bucket.append((event.sequence, callback, event))
            heapq.heappush(self._q_times, when_ns)
        else:
            bucket.append((event.sequence, callback, event))
        queue._live += 1
        fabric = self.fabric
        if fabric._active is not None and fabric._active is not self:
            fabric._note_cross_push(self, when_ns, event.sequence)
        return event

    def schedule_at(
        self, when_seconds: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``when_seconds``.

        Inlined push, exactly as :meth:`schedule` (segments schedule every
        frame's delivery and service completion through here).
        """
        when_ns = round(when_seconds * NANOSECONDS_PER_SECOND)
        clock_now = self.clock._now_ns
        if when_ns < clock_now:
            validate_schedule_time(clock_now, when_ns)
        queue = self._queue
        event = Event(when_ns, self._q_next_seq(), callback, label, False, queue)
        buckets = self._q_buckets
        bucket = buckets.get(when_ns)
        if bucket is None:
            free = queue._free
            buckets[when_ns] = bucket = free.pop() if free else []
            bucket.append((event.sequence, callback, event))
            heapq.heappush(self._q_times, when_ns)
        else:
            bucket.append((event.sequence, callback, event))
        queue._live += 1
        fabric = self.fabric
        if fabric._active is not None and fabric._active is not self:
            fabric._note_cross_push(self, when_ns, event.sequence)
        return event

    def schedule_fire(
        self, when_seconds: float, callback: Callable[[], None], label: str = ""
    ) -> None:
        """Schedule a fire-and-forget callback at ``when_seconds``.

        Identical ordering semantics to :meth:`schedule_at`, but no
        cancellation handle is allocated (``label`` is accepted for API
        symmetry and dropped).  The frame hot path — segment delivery and
        service-completion events, which are never cancelled — runs through
        here, so the fabric skips one object allocation per event.
        """
        when_ns = round(when_seconds * NANOSECONDS_PER_SECOND)
        clock_now = self.clock._now_ns
        if when_ns < clock_now:
            validate_schedule_time(clock_now, when_ns)
        queue = self._queue
        sequence = self._q_next_seq()
        buckets = self._q_buckets
        bucket = buckets.get(when_ns)
        if bucket is None:
            free = queue._free
            buckets[when_ns] = bucket = free.pop() if free else []
            bucket.append((sequence, callback, None))
            heapq.heappush(self._q_times, when_ns)
        else:
            bucket.append((sequence, callback, None))
        queue._live += 1
        fabric = self.fabric
        if fabric._active is not None and fabric._active is not self:
            fabric._note_cross_push(self, when_ns, sequence)

    def call_soon(self, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at the current time (after pending work)."""
        event = self._queue.push(self.clock._now_ns, callback, label)
        fabric = self.fabric
        if fabric._active is not None and fabric._active is not self:
            fabric._note_cross_push(self, event.time_ns, event.sequence)
        return event

    # ------------------------------------------------------------------
    # Dispatch (driven by the coordinator)
    # ------------------------------------------------------------------

    def _run_batch(self, until_ns: int, budget: Optional[int]) -> int:
        """Run this shard's events while they stay globally minimal.

        The coordinator sets ``fabric._batch_limit`` to the smallest pending
        key of every *other* shard before calling; cross-shard pushes made by
        the callbacks running here shrink that limit live, so the batch never
        runs past an event another shard must fire first.  This keeps the
        whole fabric's dispatch order exactly the single engine's
        ``(time_ns, sequence)`` order.
        """
        fabric = self.fabric
        clock = self.clock
        queue = self._queue
        times = queue._times
        buckets = queue._buckets
        n = 0
        blocked = False
        while times and not blocked:
            t = times[0]
            bucket = buckets[t]
            if not bucket:
                heapq.heappop(times)
                del buckets[t]
                free = queue._free
                if len(free) < _BUCKET_FREE_CAP:
                    free.append(bucket)
                continue
            if t > until_ns:
                break
            # Consume the bucket by index (no per-event list shifting); a
            # callback may append same-time events to this very bucket, and
            # cross-shard pushes may shrink the batch limit mid-bucket, so
            # both are re-read every iteration.  The clock advances with the
            # first event actually executed (never on a blocked bucket).
            index = 0
            before = n
            while index < len(bucket):
                sequence, callback, event = bucket[index]
                if event is not None and event.cancelled:
                    index += 1
                    queue.cancelled_discarded += 1
                    queue._dead -= 1
                    continue
                limit = fabric._batch_limit
                if limit is not None and (
                    t > limit[0] or (t == limit[0] and sequence > limit[1])
                ):
                    blocked = True
                    break
                if budget is not None and n >= budget:
                    blocked = True
                    break
                index += 1
                if event is not None:
                    event._queue = None
                if t > clock._now_ns:
                    clock._now_ns = t
                    clock._now_s = t / NANOSECONDS_PER_SECOND
                callback()
                n += 1
            if n > before:
                # Settle per-bucket bookkeeping once, not per event (live
                # counts are only read between runs, never by callbacks).
                queue._live -= n - before
                self.cursor_ns = t
            if index:
                if index == len(bucket):
                    bucket.clear()
                else:
                    del bucket[:index]
        self._dispatched += n
        return n

    # ------------------------------------------------------------------
    # Relaxed (canonical-merge) execution — see repro.sim.relaxed
    # ------------------------------------------------------------------

    def _enter_relaxed(self, shared_clock: Clock, until_ns: int) -> None:
        """Swap in the shard's private clock for a relaxed dispatch."""
        clock = self._own_clock
        clock._now_ns = shared_clock._now_ns
        clock._now_s = shared_clock._now_s
        self.clock = clock
        self.trace._clock = clock
        self._until_ns = until_ns
        self.relaxed = True

    def _exit_relaxed(self, shared_clock: Clock) -> None:
        """Restore the fabric-shared clock after a relaxed dispatch."""
        self.clock = shared_clock
        self.trace._clock = shared_clock
        self.relaxed = False

    def _relaxed_push_fire(self, when_ns: int, callback) -> None:
        """Barrier-context fire-and-forget push onto this shard's ring."""
        self._queue.push_fire(when_ns, callback)

    def _run_window(
        self,
        window_end_ns: int,
        budget: Optional[int] = None,
        extend: Optional[tuple] = None,
    ) -> int:
        """Run every pending event with ``time_ns <= window_end_ns``.

        The relaxed counterpart of :meth:`_run_batch`: no batch-limit
        comparisons and no live cross-push bookkeeping — within a
        conservative window this shard's events cannot interact with any
        other shard except through the outbox, so the loop is a plain
        time-ordered drain of the bucketed ring against the shard's private
        clock.  The clock is set (not merely advanced) per bucket, because
        barrier-flushed mailbox entries may legitimately schedule below the
        shard's furthest point; record timestamps stay exact either way and
        the canonical merge re-sorts the streams by time.

        ``extend`` — ``(other_cap, lookahead_ns, control_queue,
        pump_bound_ns)`` — lets a *sole eligible* shard grow its own window
        in place instead of bouncing through the executor's barrier loop
        once per window.  While this shard has produced no mail the other
        shards' tops are provably static, so on reaching the window end the
        drain re-derives the next conservative bound exactly as the executor
        would — ``min(other_cap, t + L) + L - 1``, clipped to the pump
        bound — and keeps going.  It stops the moment mail appears, the
        runner-up shard becomes reachable, or control work is due: the
        executor's loop takes over with its full rescan.
        """
        _ACTIVE.shard = self
        queue = self._queue
        times = queue._times
        buckets = queue._buckets
        clock = self.clock
        if extend is not None:
            other_cap, ext_lookahead, control_queue, pump_bound = extend
        n = 0
        try:
            while times:
                t = times[0]
                bucket = buckets[t]
                if not bucket:
                    heapq.heappop(times)
                    del buckets[t]
                    free = queue._free
                    if len(free) < _BUCKET_FREE_CAP:
                        free.append(bucket)
                    continue
                if t > window_end_ns:
                    if extend is None or self.outbox:
                        break
                    if other_cap is not None and t >= other_cap:
                        break
                    # Raw peek: a cancelled control head only makes the time
                    # look earlier, which breaks the extension early — the
                    # executor's rescan then handles it; never unsound.
                    control_times = control_queue._times
                    if control_times and control_times[0] <= t:
                        break
                    bound = t + ext_lookahead
                    if other_cap is not None and other_cap < bound:
                        bound = other_cap
                    bound += ext_lookahead - 1
                    if bound > pump_bound:
                        bound = pump_bound
                    if t > bound:
                        break
                    window_end_ns = bound
                clock._now_ns = t
                clock._now_s = t / NANOSECONDS_PER_SECOND
                index = 0
                before = n
                while index < len(bucket):
                    sequence, callback, event = bucket[index]
                    index += 1
                    if event is not None:
                        if event.cancelled:
                            queue.cancelled_discarded += 1
                            queue._dead -= 1
                            continue
                        event._queue = None
                    callback()
                    n += 1
                    if budget is not None and n >= budget:
                        break
                if n > before:
                    queue._live -= n - before
                    if t > self.cursor_ns:
                        self.cursor_ns = t
                if index == len(bucket):
                    bucket.clear()
                else:
                    del bucket[:index]
                if budget is not None and n >= budget:
                    break
        finally:
            _ACTIVE.shard = None
        self._dispatched += n
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EngineShard(index={self.index}, pending={len(self._queue)}, "
            f"dispatched={self._dispatched}, cursor={self.cursor_ns}ns)"
        )
