"""Typed station roles and the services they declare.

The population layer models an operational LAN as a fleet of *typed*
stations rather than anonymous blast hosts: a workstation consumes
services, a server offers the application service and leans on a
database, a database answers queries, a gateway resolves names for
everyone.  Roles are pure data — the factory stamps them onto generated
topologies (:mod:`repro.population.factory`) and the traffic synthesizer
turns the declared produce/consume edges into seeded traffic matrices
(:mod:`repro.population.traffic`).

A station's role is encoded in its host name prefix (``ws-``, ``srv-``,
``db-``, ``gw-``) so any consumer holding only the compiled scenario —
the traffic installer, the benchmarks, post-run analysis — can recover
the typing without a side channel; :func:`role_of` is that decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ServiceSpec:
    """A UDP request/response service a role can declare.

    Attributes:
        name: service key (``"app"``, ``"db"``, ``"dns"``).
        port: well-known UDP port the serving station binds.
        request_size: client request payload size in bytes (requests are
            small and fixed; *response* sizes are the heavy-tailed axis,
            drawn per request from the scenario's seeded Pareto stream).
    """

    name: str
    port: int
    request_size: int


#: The services the built-in roles declare.  Ports follow convention so
#: traces read naturally; request sizes are classic small-query sizes.
SERVICES: Dict[str, ServiceSpec] = {
    "app": ServiceSpec("app", 8080, 64),
    "db": ServiceSpec("db", 5432, 96),
    "dns": ServiceSpec("dns", 53, 40),
}


@dataclass(frozen=True)
class StationRole:
    """A typed station: what it serves, what it consumes.

    Attributes:
        name: role key (also the docs/coverage-contract name).
        prefix: host-name prefix the factory stamps (``role_of`` decodes it).
        serves: service keys this role binds and answers.
        consumes: service keys this role sends requests to.
        description: one-line human description.
    """

    name: str
    prefix: str
    serves: Tuple[str, ...]
    consumes: Tuple[str, ...]
    description: str


STATION_ROLES: Dict[str, StationRole] = {
    "workstation": StationRole(
        "workstation",
        "ws",
        serves=(),
        consumes=("app", "dns"),
        description="end-user seat: application requests plus occasional lookups",
    ),
    "server": StationRole(
        "server",
        "srv",
        serves=("app",),
        consumes=("db",),
        description="application server: answers workstations, queries a database",
    ),
    "database": StationRole(
        "database",
        "db",
        serves=("db",),
        consumes=(),
        description="database: answers query traffic from the servers",
    ),
    "gateway": StationRole(
        "gateway",
        "gw",
        serves=("dns",),
        consumes=(),
        description="gateway: answers fleet-wide lookup traffic on the core segment",
    ),
}

_BY_PREFIX: Dict[str, StationRole] = {
    role.prefix: role for role in STATION_ROLES.values()
}


def role_of(host_name: str) -> Optional[StationRole]:
    """Decode a factory-stamped host name back to its role.

    Returns ``None`` for hosts the population factory did not create
    (measurement probes, hand-built hosts), so the traffic synthesizer
    simply leaves them alone.
    """
    prefix = host_name.split("-", 1)[0]
    return _BY_PREFIX.get(prefix)
