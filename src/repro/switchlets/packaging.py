"""Building switchlet packages from the application classes.

The paper ships Caml byte-code files; the reproduction ships Python source.
To keep the shipped code identical to the code the test suite exercises, the
packaging layer extracts the application classes' source with
``inspect.getsource``, concatenates it with a small registration epilogue
(the "top-level forms that call a registration function" of Section 5.1.2),
and wraps the result in a :class:`~repro.core.switchlet.SwitchletPackage`
whose interface digests are computed against the target environment.

The result is genuinely loadable code: the loader compiles it with restricted
builtins and executes it against the thinned environment, and the only way it
can interact with the node afterwards is through the functions it registered.
"""

from __future__ import annotations

import inspect
import textwrap
from functools import lru_cache
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.switchlet import SwitchletPackage
from repro.switchlets import control as control_module
from repro.switchlets import dec_spanning_tree as dec_module
from repro.switchlets import dumb_bridge as dumb_module
from repro.switchlets import learning_bridge as learning_module
from repro.switchlets import spanning_tree as stp_module
from repro.switchlets import vlan_bridge as vlan_module

#: Environment modules every bridge switchlet is compiled against.
DEFAULT_REQUIRED_MODULES = ("Safestd", "Safeunix", "Log", "Safethread", "Func", "Unixnet")


@lru_cache(maxsize=None)
def _class_source(component: type) -> str:
    """The dedented source of one class (cached: extraction tokenizes the
    whole defining module, and every node build re-packages the same
    module-level classes)."""
    return textwrap.dedent(inspect.getsource(component))


def component_source(components: Iterable[type]) -> str:
    """Concatenate the (deduplicated) source of the given classes."""
    seen = set()
    pieces = []
    for component in components:
        if component in seen:
            continue
        seen.add(component)
        pieces.append(_class_source(component))
    return "\n\n".join(pieces)


def build_package(
    name: str,
    components: Sequence[type],
    registration_source: str,
    environment: Optional[Mapping[str, object]] = None,
    required_modules: Sequence[str] = DEFAULT_REQUIRED_MODULES,
    metadata: Optional[Mapping[str, str]] = None,
) -> SwitchletPackage:
    """Assemble a switchlet package.

    Args:
        name: package name.
        components: classes whose source is shipped (order preserved,
            duplicates dropped).
        registration_source: the top-level forms appended after the class
            definitions; they run when the switchlet is loaded.
        environment: the thinned environment the package is compiled against
            (its interface digests are recorded).  ``None`` records no
            interface requirements — useful for packages built before any
            node exists, at the cost of skipping the link-time check.
        required_modules: which environment modules to record digests for.
        metadata: extra descriptive fields.
    """
    source = component_source(components) + "\n\n" + textwrap.dedent(registration_source)
    if environment is None:
        return SwitchletPackage(name=name, source=source, metadata=dict(metadata or {}))
    return SwitchletPackage.build(
        name=name,
        source=source,
        environment=environment,
        required_modules=list(required_modules),
        metadata=dict(metadata or {}),
    )


# ---------------------------------------------------------------------------
# The paper's switchlets
# ---------------------------------------------------------------------------


def dumb_bridge_package(
    environment: Optional[Mapping[str, object]] = None,
) -> SwitchletPackage:
    """The first switchlet: the dumb bridge / buffered repeater."""
    return build_package(
        name="dumb-bridge",
        components=dumb_module.PACKAGED_COMPONENTS,
        registration_source=dumb_module.REGISTRATION_SOURCE,
        environment=environment,
        metadata={"description": "minimal dumb bridge (buffered repeater)"},
    )


def learning_bridge_package(
    environment: Optional[Mapping[str, object]] = None,
    aging_time: Optional[float] = None,
) -> SwitchletPackage:
    """The second switchlet: the self-learning switching function."""
    registration = learning_module.REGISTRATION_SOURCE
    if aging_time is not None:
        registration = (
            "\n_app = LearningBridgeApp(Unixnet, Func, Log, Safeunix, Safestd, "
            f"aging_time={float(aging_time)!r})\n"
            "_app.start()\n"
            'Func.register("switchlet.learning-bridge", _app)\n'
        )
    return build_package(
        name="learning-bridge",
        components=learning_module.PACKAGED_COMPONENTS,
        registration_source=registration,
        environment=environment,
        metadata={"description": "self-learning bridge switching function"},
    )


def vlan_bridge_package(
    environment: Optional[Mapping[str, object]] = None,
    default_vlan: Optional[int] = None,
    aging_time: Optional[float] = None,
) -> SwitchletPackage:
    """The VLAN-aware learning bridge (802.1Q access/trunk semantics).

    Like the plain learning switchlet it replaces the dumb bridge's
    switching function; the port table is pushed afterwards through the
    ``"bridge.vlan.configure"`` access point.
    """
    registration = vlan_module.REGISTRATION_SOURCE
    if default_vlan is not None or aging_time is not None:
        arguments = ""
        if default_vlan is not None:
            arguments += f", default_vlan={int(default_vlan)!r}"
        if aging_time is not None:
            arguments += f", aging_time={float(aging_time)!r}"
        registration = (
            "\n_app = VlanLearningBridgeApp(Unixnet, Func, Log, Safeunix, Safestd"
            f"{arguments})\n"
            "_app.start()\n"
            'Func.register("switchlet.vlan-bridge", _app)\n'
        )
    return build_package(
        name="vlan-bridge",
        components=vlan_module.PACKAGED_COMPONENTS,
        registration_source=registration,
        environment=environment,
        metadata={"description": "802.1Q VLAN-aware learning bridge"},
    )


def spanning_tree_package(
    environment: Optional[Mapping[str, object]] = None,
    autostart: bool = True,
    buggy: bool = False,
    hello_time: Optional[float] = None,
    max_age: Optional[float] = None,
    forward_delay: Optional[float] = None,
) -> SwitchletPackage:
    """The third switchlet: the IEEE 802.1D spanning tree.

    Args:
        environment: target environment for interface digests.
        autostart: start the protocol at load time (``False`` gives Table 1's
            "loaded but idle" state, ready for the control switchlet).
        buggy: ship the deliberately faulty implementation used by the
            fallback experiment.
        hello_time / max_age / forward_delay: override the standard 802.1D
            timers (2 s / 20 s / 15 s).  Failure detection rides on
            ``max_age`` expiry and failover on the two ``forward_delay``
            transitions, so the failover scenarios compress these to run
            whole reconvergence episodes in seconds of simulated time.
    """
    timer_args = ""
    if hello_time is not None:
        timer_args += f", hello_time={float(hello_time)!r}"
    if max_age is not None:
        timer_args += f", max_age={float(max_age)!r}"
    if forward_delay is not None:
        timer_args += f", forward_delay={float(forward_delay)!r}"
    if buggy:
        components = stp_module.PACKAGED_COMPONENTS_BUGGY
        dormant = stp_module.REGISTRATION_SOURCE_BUGGY_DORMANT
        app_class = "BuggySpanningTreeApp"
        name = "spanning-tree-802.1d-buggy"
        description = "deliberately faulty 802.1D spanning tree (fallback experiment)"
    else:
        components = stp_module.PACKAGED_COMPONENTS
        dormant = stp_module.REGISTRATION_SOURCE_DORMANT
        app_class = "SpanningTreeApp"
        name = "spanning-tree-802.1d"
        description = "IEEE 802.1D spanning tree switchlet"
    if timer_args:
        # The dormant constants construct the app with default timers;
        # rewrite just the constructor call so the registration contract
        # (registry key, environment arguments) stays spelled in one place.
        registration = dormant.replace(
            "Safethread)", f"Safethread{timer_args})"
        )
        if autostart:
            registration = registration + "\n_app.start(listen=True)\n"
    elif not buggy:
        # Byte-exact legacy sources for the default-timer packages.
        registration = (
            stp_module.REGISTRATION_SOURCE if autostart else dormant
        )
    else:
        registration = dormant
        if autostart:
            registration = registration + "\n_app.start(listen=True)\n"
    return build_package(
        name=name,
        components=components,
        registration_source=registration,
        environment=environment,
        metadata={"description": description},
    )


def dec_spanning_tree_package(
    environment: Optional[Mapping[str, object]] = None,
) -> SwitchletPackage:
    """The DEC-format "old protocol" spanning tree (loaded and started)."""
    return build_package(
        name="spanning-tree-dec",
        components=dec_module.PACKAGED_COMPONENTS,
        registration_source=dec_module.REGISTRATION_SOURCE,
        environment=environment,
        metadata={"description": "DEC-style spanning tree (old protocol)"},
    )


def control_package(
    environment: Optional[Mapping[str, object]] = None,
    suppression_period: float = control_module.ControlApp.SUPPRESSION_PERIOD,
    validation_delay: float = control_module.ControlApp.VALIDATION_DELAY,
) -> SwitchletPackage:
    """The protocol-transition control switchlet.

    The suppression window and validation delay default to the paper's 30 s
    and 60 s but can be shortened for fast-running tests.
    """
    registration = (
        "\n_app = ControlApp(Unixnet, Func, Log, Safeunix, Safethread, "
        f"suppression_period={float(suppression_period)!r}, "
        f"validation_delay={float(validation_delay)!r})\n"
        'Func.register("switchlet.control", _app)\n'
        "_app.start()\n"
    )
    return build_package(
        name="transition-control",
        components=control_module.PACKAGED_COMPONENTS,
        registration_source=registration,
        environment=environment,
        metadata={"description": "automatic protocol transition control switchlet"},
    )


def standard_bridge_packages(
    environment: Optional[Mapping[str, object]] = None,
    include_spanning_tree: bool = True,
) -> list:
    """The incremental switchlet stack of Section 5.3, in load order."""
    packages = [dumb_bridge_package(environment), learning_bridge_package(environment)]
    if include_spanning_tree:
        packages.append(spanning_tree_package(environment, autostart=True))
    return packages
