"""Tests for the environment modules: Func, Safestd, Safeunix, Log, Safethread."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.log import LogImplementation
from repro.core.registry import FuncRegistry
from repro.core.safestd import Hashtbl, SafestdImplementation
from repro.core.safethread import Condition, Mutex, SafethreadImplementation
from repro.core.safeunix import SafeunixImplementation, SockAddr
from repro.exceptions import RegistrationError


# ---------------------------------------------------------------------------
# Func registry
# ---------------------------------------------------------------------------


class TestFuncRegistry:
    def test_register_and_call(self):
        registry = FuncRegistry()
        registry.register("add", lambda a, b: a + b)
        assert registry.call("add", 2, 3) == 5

    def test_replacement_semantics(self):
        registry = FuncRegistry()
        registry.register("switch", lambda: "dumb")
        registry.register("switch", lambda: "learning")
        assert registry.call("switch") == "learning"
        assert registry.registration_history == [("switch", False), ("switch", True)]

    def test_lookup_missing_raises(self):
        registry = FuncRegistry()
        with pytest.raises(RegistrationError):
            registry.lookup("missing")
        assert registry.lookup_opt("missing") is None

    def test_call_non_callable_raises(self):
        registry = FuncRegistry()
        registry.register("data", {"a": 1})
        with pytest.raises(RegistrationError):
            registry.call("data")

    def test_register_data_structures(self):
        registry = FuncRegistry()
        table = {"host": "port"}
        registry.register("table", table)
        assert registry.lookup("table") is table

    def test_invalid_keys_rejected(self):
        registry = FuncRegistry()
        with pytest.raises(RegistrationError):
            registry.register("", lambda: None)
        with pytest.raises(RegistrationError):
            registry.register(None, lambda: None)

    def test_unregister_and_keys(self):
        registry = FuncRegistry()
        registry.register("a", 1)
        registry.register("b", 2)
        registry.unregister("a")
        registry.unregister("never-existed")
        assert registry.keys() == ["b"]
        assert not registry.registered("a")

    def test_clear(self):
        registry = FuncRegistry()
        registry.register("a", 1)
        registry.clear()
        assert registry.keys() == []


# ---------------------------------------------------------------------------
# Safestd / Hashtbl
# ---------------------------------------------------------------------------


class TestHashtbl:
    def test_add_shadows_and_remove_reexposes(self):
        table = Hashtbl.create()
        table.add("k", 1)
        table.add("k", 2)
        assert table.find("k") == 2
        table.remove("k")
        assert table.find("k") == 1
        table.remove("k")
        assert table.find_opt("k") is None

    def test_replace(self):
        table = Hashtbl.create()
        table.replace("k", 1)
        table.replace("k", 2)
        assert table.find("k") == 2
        assert table.length() == 1

    def test_find_missing_raises_keyerror(self):
        table = Hashtbl.create()
        with pytest.raises(KeyError):
            table.find("missing")

    def test_mem_and_keys_and_items(self):
        table = Hashtbl.create()
        table.replace("a", 1)
        table.replace("b", 2)
        assert table.mem("a")
        assert not table.mem("z")
        assert sorted(table.keys()) == ["a", "b"]
        assert dict(table.items()) == {"a": 1, "b": 2}

    def test_iter_and_clear(self):
        table = Hashtbl.create()
        table.replace("a", 1)
        seen = {}
        table.iter(lambda key, value: seen.update({key: value}))
        assert seen == {"a": 1}
        table.clear()
        assert table.length() == 0

    def test_remove_missing_is_noop(self):
        table = Hashtbl.create()
        table.remove("nothing")
        assert table.length() == 0

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=20), st.integers()), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_replace_matches_dict_semantics(self, operations):
        table = Hashtbl.create()
        reference = {}
        for key, value in operations:
            table.replace(key, value)
            reference[key] = value
        assert dict(table.items()) == reference


class TestSafestdHelpers:
    def test_pack_unpack_roundtrip(self):
        impl = SafestdImplementation()
        data = impl.pack_be(0xABCD, 4)
        assert data == b"\x00\x00\xab\xcd"
        assert impl.unpack_be(data, 0, 4) == 0xABCD
        assert impl.unpack_be(data, 2, 2) == 0xABCD

    def test_bytes_helpers(self):
        impl = SafestdImplementation()
        assert impl.bytes_concat([b"ab", b"cd"]) == b"abcd"
        assert impl.bytes_slice(b"abcdef", 2, 3) == b"cde"

    def test_min_max_and_string_conversions(self):
        impl = SafestdImplementation()
        assert impl.minimum(3, 5) == 3
        assert impl.maximum(3, 5) == 5
        assert impl.string_of_int(42) == "42"
        assert impl.int_of_string("17") == 17

    def test_exports_exist(self):
        impl = SafestdImplementation()
        for name in SafestdImplementation.THINNED_EXPORTS:
            assert hasattr(impl, name)


# ---------------------------------------------------------------------------
# Safeunix
# ---------------------------------------------------------------------------


class TestSafeunix:
    def test_gettimeofday_tracks_simulated_time(self, sim):
        impl = SafeunixImplementation(sim)
        assert impl.gettimeofday() == 0.0
        sim.run_until(4.5)
        assert impl.gettimeofday() == pytest.approx(4.5)

    def test_sockaddr(self):
        addr = SockAddr(interface="eth0", mac="aa:bb:cc:dd:ee:ff")
        assert addr.describe() == "eth0/aa:bb:cc:dd:ee:ff"


# ---------------------------------------------------------------------------
# Log
# ---------------------------------------------------------------------------


class TestLog:
    def test_messages_recorded_and_traced(self, sim):
        log = LogImplementation(sim, "node1")
        log.log("hello")
        assert log.messages()[0][1] == "hello"
        assert sim.trace.count(category="switchlet.log", source="node1") == 1

    def test_off_method_discards(self, sim):
        log = LogImplementation(sim, "node1")
        log.set_method("off")
        log.log("ignored")
        assert log.messages() == []

    def test_invalid_method_rejected(self, sim):
        log = LogImplementation(sim, "node1")
        with pytest.raises(ValueError):
            log.set_method("paper-tape")

    def test_capacity_bound(self, sim):
        log = LogImplementation(sim, "node1", capacity=5)
        for index in range(10):
            log.log(str(index))
        messages = [text for _, text in log.messages()]
        assert messages == ["5", "6", "7", "8", "9"]

    def test_clear(self, sim):
        log = LogImplementation(sim, "node1")
        log.log("x")
        log.clear()
        assert log.messages() == []


# ---------------------------------------------------------------------------
# Safethread / Mutex / Condition
# ---------------------------------------------------------------------------


class TestSafethread:
    def test_create_runs_soon(self, sim):
        threads = SafethreadImplementation(sim, "node1")
        fired = []
        threads.create(lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(0.0)]

    def test_delay(self, sim):
        threads = SafethreadImplementation(sim, "node1")
        fired = []
        threads.delay(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(3.0)]

    def test_every_until_cancel(self, sim):
        threads = SafethreadImplementation(sim, "node1")
        fired = []
        handle = threads.every(1.0, lambda: fired.append(sim.now))
        sim.run_until(3.5)
        handle.cancel()
        sim.run_until(10.0)
        assert len(fired) == 3

    def test_cancel_delay(self, sim):
        threads = SafethreadImplementation(sim, "node1")
        fired = []
        handle = threads.delay(1.0, lambda: fired.append(True))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_all(self, sim):
        threads = SafethreadImplementation(sim, "node1")
        fired = []
        threads.delay(1.0, lambda: fired.append(1))
        threads.every(1.0, lambda: fired.append(2))
        threads.cancel_all()
        sim.run_until(5.0)
        assert fired == []

    def test_self_id_monotonic(self, sim):
        threads = SafethreadImplementation(sim, "node1")
        first = threads.self_id()
        threads.create(lambda: None)
        assert threads.self_id() > first


class TestMutexCondition:
    def test_mutex_lock_unlock(self):
        mutex = Mutex.create()
        mutex.lock()
        assert mutex.locked
        mutex.unlock()
        assert not mutex.locked

    def test_mutex_unlock_unlocked_raises(self):
        mutex = Mutex.create()
        with pytest.raises(RuntimeError):
            mutex.unlock()

    def test_mutex_try_lock(self):
        mutex = Mutex.create()
        assert mutex.try_lock()
        assert not mutex.try_lock()

    def test_condition_signal_fifo(self):
        condition = Condition.create()
        order = []
        condition.wait_callback(lambda: order.append(1))
        condition.wait_callback(lambda: order.append(2))
        condition.signal()
        assert order == [1]
        condition.broadcast()
        assert order == [1, 2]
        assert condition.waiting == 0
