"""Process-per-shard execution of the relaxed fabric: the wall-clock backend.

The threaded relaxed executor (:mod:`repro.sim.relaxed`) parallelizes CMB
lookahead windows across worker *threads*; on a GIL build that buys CPU-time
throughput but never wall-clock speedup.  This module runs the same window
plan across worker *processes* — true multi-core execution — while keeping
the canonical-merge correctness contract bit-for-bit.

**Execution model (fork-at-dispatch SPMD replicas).**  At the relaxed
dispatch the parent forks one worker per shard (``fork`` start method: each
worker inherits the complete fabric object graph copy-on-write, so no
component state is ever pickled).  Worker ``k`` executes *only* shard
``k``'s :meth:`~repro.sim.shard.EngineShard._run_window` drains.  All
barrier work — control-ring execution and canonical mailbox application —
is **replicated identically in every process** (parent included): each
replica runs the same callbacks in the same order, so cut-segment service
state, fault-model RNG draws and control outcomes stay in lockstep, and a
ring push made by replicated work is simply live in the ring's owner
process and inert everywhere else.

**Transport.**  One duplex :func:`multiprocessing.Pipe` per worker.  Window
rounds are one round-trip to the *planned* workers only (the command carries
the window bound, the pump bound and the sole-leader extension cap; the
reply carries the shard's serialized outbox, its new ring top and the event
count).  Control rounds are one broadcast round-trip.  Mailbox entries are
serialized symbolically — segment name, interface indices, and the frame as
a lossless envelope (:func:`repro.core.unixnet.frame_to_envelope_bytes`) —
merged by the parent in the canonical ``(time, sender shard, position)``
order, then re-broadcast so every replica applies the identical batch; each
worker acknowledges with its post-apply ring top, since applying mail is the
one barrier action that creates worker-ring work outside a reported
round-trip.

**Parent-side planning.**  The parent runs the same per-shard-bound window
plan as :class:`~repro.sim.relaxed.RelaxedExecutor.dispatch`.  Its shard
tops come from two sources merged per round: the top each worker reported
at last contact (every contact — window, control and mail alike — reports
one), and the parent's own replica ring, cleared at every report from its
owner.  The replica ring is a conservative backstop only: once a worker
has fired cut-segment service completions the parent merely cleared, the
parent's copy of that segment's service state lags and its ring goes quiet,
so the worker's own post-apply mail reports are the authoritative signal
that mailed transmits created home-shard work.  ``min`` of the two is the
worker's true top (a cancellation can only make it conservative, which
costs an empty window, never correctness).

**Trace shipping.**  Worker ``k`` is the sole authority for recorder ``k``'s
stream: window emissions happen only there, and replicated barrier work
emits shard-``k``-homed records in every replica but only worker ``k``'s
copy ships.  Shipping is deferred: ``run()`` returns after a lightweight
cursor/stats sync, and the per-shard record suffixes (flat tuples, lazy
details rendered) transfer on the first trace query — mirroring the
recorders' own lazy counter folding, and keeping serialization out of the
measured window exactly as materialization is for the in-process backends.

**Single measured dispatch.**  After a process dispatch the parent's
component state and rings are stale by construction (the workers' in-window
state cannot be shipped back — it is closures all the way down).  The
fabric is therefore marked *stale*: any further dispatch raises
:class:`~repro.exceptions.FabricBackendError` until ``reset()``.  Drivers
run warm-up and setup phases on the in-process relaxed engine (canonically
identical by the relaxed contract) and spend the process backend on exactly
one measured ``run()``/``run_until()`` — see ``ScenarioRun.warm_up``.

**Failure surfacing.**  A worker crash or pipe EOF mid-window raises a
typed :class:`FabricBackendError` carrying the failing shard id and the
window bounds it was granted — never a hang at the barrier: the dead
process closes its pipe end, which turns the parent's blocking ``recv``
into ``EOFError`` immediately.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from functools import partial
from time import perf_counter
from typing import List, Optional

from repro.core.unixnet import envelope_bytes_to_frame, frame_to_envelope_bytes
from repro.exceptions import FabricBackendError
from repro.sim.clock import NANOSECONDS_PER_SECOND
from repro.telemetry.flight import FlightRecorder

#: Set in worker processes to the shard index they own; ``None`` in the
#: parent.  Exposed for diagnostics and fault-injection tests.
_WORKER_INDEX: Optional[int] = None


def worker_index() -> Optional[int]:
    """The shard index of the worker process running this interpreter, if any."""
    return _WORKER_INDEX


# ---------------------------------------------------------------------------
# Mailbox serialization
#
# Outbox entries have exactly three shapes (see RelaxedExecutor._flush_mail);
# every "push" callback the segment layer produces is a
# functools.partial(Segment._deliver_run, sender, frame, run, False), which
# serializes symbolically: the segment by registered name, NICs by their
# index in the segment's interface list (robust against delivery-run list
# refreshes between capture and application), the frame as an envelope.
# ---------------------------------------------------------------------------


def _encode_outbox(shard) -> list:
    """Serialize and clear one shard's outbox (runs in the worker)."""
    encoded = []
    for entry in shard.outbox:
        kind = entry[0]
        if kind == "tx":
            _, when_ns, segment, sender, frame = entry
            encoded.append(
                (
                    "tx",
                    when_ns,
                    segment.name,
                    segment._interfaces.index(sender),
                    frame_to_envelope_bytes(frame, when_ns=when_ns),
                )
            )
        elif kind == "drop":
            encoded.append(("drop", entry[1], entry[2].name))
        elif kind == "push":
            _, when_ns, target, callback = entry
            func = getattr(callback, "func", None)
            segment = getattr(func, "__self__", None)
            if getattr(func, "__name__", "") != "_deliver_run" or segment is None:
                raise FabricBackendError(
                    f"process backend cannot serialize outbox push {callback!r} "
                    "(expected a Segment._deliver_run partial)",
                    shard_index=shard.index,
                )
            sender, frame, run, _first = callback.args
            interfaces = segment._interfaces
            encoded.append(
                (
                    "run",
                    when_ns,
                    segment.name,
                    interfaces.index(sender),
                    frame_to_envelope_bytes(frame, when_ns=when_ns),
                    getattr(target, "index", -1),
                    tuple(interfaces.index(nic) for nic in run),
                )
            )
        else:  # pragma: no cover - new outbox kinds must be added here
            raise FabricBackendError(
                f"unknown outbox entry kind {kind!r}", shard_index=shard.index
            )
    shard.outbox.clear()
    return encoded


def _apply_mail(fabric, blob) -> None:
    """Apply a canonically ordered serialized mail batch to this replica.

    Runs in *every* process (parent and all workers) with the identical
    batch: pushes land on replica rings — live only in the ring's owner —
    while cut-segment service state advances in lockstep everywhere.
    """
    segments = fabric._segments
    shards = fabric._shards
    for entry in blob:
        kind = entry[0]
        if kind == "tx":
            _, when_ns, name, sender_index, envelope = entry
            segment = segments[name]
            frame, _meta = envelope_bytes_to_frame(envelope)
            segment._apply_relaxed_transmit(
                when_ns, segment._interfaces[sender_index], frame
            )
        elif kind == "drop":
            segments[entry[2]].frames_lost += 1
        else:  # "run"
            _, when_ns, name, sender_index, envelope, target_index, run_indices = entry
            segment = segments[name]
            interfaces = segment._interfaces
            frame, _meta = envelope_bytes_to_frame(envelope)
            run = [interfaces[i] for i in run_indices]
            callback = partial(
                segment._deliver_run, interfaces[sender_index], frame, run, False
            )
            target = fabric if target_index < 0 else shards[target_index]
            target._relaxed_push_fire(when_ns, callback)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(fabric, index, pairs) -> None:
    """The shard worker loop: obey window/control/mail commands until ``fin``."""
    global _WORKER_INDEX
    _WORKER_INDEX = index
    for k, (parent_end, child_end) in enumerate(pairs):
        parent_end.close()
        if k != index:
            child_end.close()
    conn = pairs[index][1]
    shards = fabric._shards
    shard = shards[index]
    recorder = shard.trace
    base = len(recorder._fast) if recorder._fast is not None else 0
    control = fabric._control
    executor = fabric._relaxed
    # Telemetry rides the fork: the worker sees the parent's enabled state
    # and accumulates into a *fresh* registry (the inherited aggregate may
    # hold pre-fork counts), shipped home with the trace suffixes at "fin".
    telemetry = fabric._telemetry
    if telemetry is not None:
        from time import perf_counter

        from repro.telemetry.metrics import MetricsRegistry

        wreg = MetricsRegistry()
        events_counter = wreg.counter("engine_events_dispatched", shard=index)
        queue_gauge = wreg.gauge("engine_queue_high_water", shard=index)
        win_hist = wreg.histogram("window_events", shard=index)
        compute_total = 0.0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Parent died or tore the pipe down: exit quietly.
            os._exit(0)
        try:
            kind = message[0]
            if kind == "win":
                _, bound, pump_bound, cap = message
                for other in shards:
                    other._until_ns = pump_bound
                extend = None if cap is None else (cap[0], cap[1], control, pump_bound)
                control_state = (control._live, control._dead)
                comp_s = 0.0
                if telemetry is not None:
                    win_start = perf_counter()
                n = shard._run_window(bound, None, extend)
                if telemetry is not None:
                    comp_s = perf_counter() - win_start
                    compute_total += comp_s
                    events_counter.inc(n)
                    win_hist.observe(n)
                    queue_gauge.set_max(len(shard._queue))
                if (control._live, control._dead) != control_state:
                    raise FabricBackendError(
                        "facade scheduling (or facade-event cancellation) from "
                        "window context is not supported under the process "
                        "backend: the control-ring replicas would diverge",
                        shard_index=index,
                        window=(bound, bound),
                    )
                mail = _encode_outbox(shard) if shard.outbox else None
                times = shard._queue._times
                # The trailing element is this round's window-drain wall
                # seconds (0.0 with telemetry off) — the parent subtracts
                # the slowest worker's share from the round-trip to split
                # pipe wait from window compute.
                conn.send(("ok", mail, times[0] if times else None, n, comp_s))
            elif kind == "mail":
                _apply_mail(fabric, message[1])
                # Reply with the post-apply ring top: applying mail can
                # create home-shard work (a mailed cut-segment transmit
                # serves inline, pushing delivery events onto this shard's
                # ring).  The parent replica applies the same mail and
                # mirrors those pushes, but this report is the worker's
                # authoritative top — without it the planner once starved
                # shards of windows when replica service state drifted,
                # stranding every later mailed frame in the pending queue
                # (service continuations now ride the control ring, which
                # keeps the replicas in lockstep; the report stays as the
                # planner's ground truth).
                times = shard._queue._times
                conn.send(("ok", None, times[0] if times else None, 0))
            elif kind == "ctrl":
                n = executor._run_control(message[1], None)
                for other in shards:
                    if other.outbox:
                        executor._flush_mail(shards)
                        break
                times = shard._queue._times
                conn.send(("ok", None, times[0] if times else None, n))
            elif kind == "sync":
                conn.send(
                    (
                        "sync",
                        shard.cursor_ns,
                        shard._dispatched,
                        shard._queue.cancelled_discarded,
                    )
                )
            elif kind == "fin":
                fast = recorder._fast if recorder._fast is not None else []
                suffix = []
                for time_s, source, category, detail, seq in fast[base:]:
                    if callable(detail):
                        detail = detail()
                    suffix.append((time_s, source, category, detail, seq))
                blob = None
                if telemetry is not None:
                    from repro.telemetry.report import snapshot_segment

                    # Ship this shard's registry plus the statistics of the
                    # segments homed here: after a process dispatch the
                    # parent's own Segment copies only saw replicated
                    # barrier work, so the worker's are authoritative (cut
                    # segments advance in lockstep; the home copy counts).
                    blob = {
                        "compute_s": compute_total,
                        "metrics": wreg.snapshot(),
                        "segments": {
                            name: snapshot_segment(segment)
                            for name, segment in fabric._segments.items()
                            if getattr(segment.sim, "index", None) == index
                        },
                    }
                conn.send(("fin", suffix, blob))
                conn.close()
                os._exit(0)
            else:  # pragma: no cover - protocol extension guard
                raise FabricBackendError(f"unknown worker command {kind!r}")
        except BaseException:
            try:
                conn.send(("err", index, traceback.format_exc()))
            except Exception:
                pass
            os._exit(1)


# ---------------------------------------------------------------------------
# Parent-side executor
# ---------------------------------------------------------------------------


class ProcessExecutor:
    """Drives one process-backed relaxed dispatch of a ``ShardedSimulator``.

    One instance serves exactly one dispatch: it forks the workers, runs the
    window-planning loop, syncs cursors and stats eagerly at the end, and
    then lingers (workers alive, pipes open) as ``fabric._proc_pending``
    until the first trace query pulls the per-shard record suffixes over —
    or ``reset()``/``trace.clear()`` discards them.
    """

    def __init__(self, fabric) -> None:
        self.fabric = fabric
        #: Window rounds executed (mirrors RelaxedExecutor.windows).
        self.windows = 0
        #: Canonical mailbox entries applied (counted once, at the parent).
        self.mail_flushed = 0
        self._procs: list = []
        self._conns: list = []
        self._bases: List[int] = []
        self._last_window: list = []
        self._fetched = True
        #: Always-on crash-context recorder: the last few pipe round-trip
        #: spans per shard, dumped into FabricBackendError post-mortems.
        #: Cost per round-trip is two wall-clock reads and a deque append —
        #: noise next to the pipe syscalls it brackets.
        n_shards = len(fabric._shards)
        self.flight = FlightRecorder(n_shards)
        self._send_stamp = [0.0] * n_shards
        self._send_kind = [""] * n_shards
        self._pipe_messages = 0

    # -- transport ----------------------------------------------------------

    def _send(self, index: int, message, window=None) -> None:
        if window is not None:
            self._last_window[index] = window
        self._send_kind[index] = message[0]
        self._send_stamp[index] = perf_counter()
        self._pipe_messages += 1
        try:
            self._conns[index].send(message)
        except (BrokenPipeError, EOFError, OSError) as exc:
            self._worker_failed(index, exc)

    def _recv(self, index: int):
        try:
            reply = self._conns[index].recv()
        except (EOFError, OSError) as exc:
            self._worker_failed(index, exc)
        self.flight.record(
            index,
            self._send_kind[index],
            self._last_window[index],
            perf_counter() - self._send_stamp[index],
        )
        if reply[0] == "err":
            failed, remote = reply[1], reply[2]
            window = self._last_window[failed]
            tail = self.flight.tail(failed)
            self._teardown(mark_stale=True)
            raise FabricBackendError(
                f"shard {failed} worker raised during window "
                f"[{window[0]}, {window[1]}] ns:\n{remote}\n"
                f"recent shard {failed} spans (oldest first):\n"
                f"{FlightRecorder.format_tail(tail)}",
                shard_index=failed,
                window=window,
                flight=tail,
            )
        return reply

    def _worker_failed(self, index: int, exc) -> None:
        window = self._last_window[index]
        tail = self.flight.tail(index)
        self._teardown(mark_stale=True)
        raise FabricBackendError(
            f"shard {index} worker process died (pipe EOF) while executing "
            f"window [{window[0]}, {window[1]}] ns\n"
            f"recent shard {index} spans (oldest first):\n"
            f"{FlightRecorder.format_tail(tail)}",
            shard_index=index,
            window=window,
            flight=tail,
        ) from exc

    # -- dispatch -----------------------------------------------------------

    def dispatch(self, until_ns: int, max_events: Optional[int] = None) -> int:
        """Run every pending event with ``time_ns <= until_ns`` across workers."""
        fabric = self.fabric
        if max_events is not None:
            raise FabricBackendError(
                "the process backend does not support max_events/step(); "
                "use the in-process relaxed backend for budgeted stepping"
            )
        shards = fabric._shards
        control = fabric._control
        control_times = control._times
        # Empty fast path: nothing due inside the horizon — no fork, and the
        # fabric stays fresh (run_until on a drained fabric is common driver
        # glue and must not consume the single measured dispatch).
        due = bool(control_times) and control_times[0] <= until_ns
        if not due:
            for shard in shards:
                times = shard._queue._times
                if times and times[0] <= until_ns:
                    due = True
                    break
        if not due:
            return 0
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:
            raise FabricBackendError(
                "the process backend requires the 'fork' start method, which "
                "this platform does not provide"
            ) from exc
        # No live worker threads may cross a fork.
        fabric._relaxed.close()
        lookahead = fabric.lookahead_ns
        shared_clock = fabric.clock
        n_shards = len(shards)
        shard_range = range(n_shards)
        self._bases = [
            len(shard.trace._fast) if shard.trace._fast is not None else 0
            for shard in shards
        ]
        self._last_window = [(0, 0)] * n_shards
        # Enter relaxed before forking so every worker inherits the private
        # per-shard clocks already swapped in.
        for shard in shards:
            shard._enter_relaxed(shared_clock, until_ns)
        pairs = [ctx.Pipe(duplex=True) for _ in shard_range]
        try:
            for index in shard_range:
                proc = ctx.Process(
                    target=_worker_main, args=(fabric, index, pairs), daemon=True
                )
                proc.start()
                self._procs.append(proc)
        except BaseException:
            self._teardown(mark_stale=True)
            raise
        for _parent_end, child_end in pairs:
            child_end.close()
        self._conns = [parent_end for parent_end, _child_end in pairs]
        self._fetched = False
        self.windows = 0
        self.mail_flushed = 0
        dispatched = 0
        # The worker's ring top at its last contact; between contacts the
        # parent's replica ring (cleared on every report) accumulates exactly
        # the barrier pushes the report does not yet reflect.
        reported: List[Optional[int]] = [None] * n_shards
        effective: List[Optional[int]] = [None] * n_shards
        # Telemetry (default off) is guarded once per planner round.  The
        # worker half of each "ok" reply carries that round's window-drain
        # wall seconds; the slowest worker's share is re-attributed from
        # "pipe" to "compute", which decomposes each round-trip exactly:
        # the round cannot return before its slowest window finishes.
        telemetry = fabric._telemetry
        timer = None
        if telemetry is not None:
            from repro.telemetry.spans import PhaseTimer

            registry = telemetry.registry
            timer = PhaseTimer()
            planner_counter = registry.counter("proc_planner_rounds_total")
        try:
            while True:
                if timer is not None:
                    planner_counter.inc()
                t_min = None
                t_second = None
                leader_index = -1
                tied = False
                for index in shard_range:
                    top = reported[index]
                    times = shards[index]._queue._times
                    if times and (top is None or times[0] < top):
                        top = times[0]
                    effective[index] = top
                    if top is None:
                        continue
                    if t_min is None or top < t_min:
                        t_second = t_min
                        t_min = top
                        leader_index = index
                        tied = False
                    elif top == t_min:
                        tied = True
                        t_second = top
                    elif t_second is None or top < t_second:
                        t_second = top
                control_t = control_times[0] if control_times else None
                if control_t is not None and control_t <= until_ns and (
                    t_min is None or control_t <= t_min
                ):
                    # Control barrier, replicated: broadcast, run locally,
                    # then fold every worker's post-barrier top.
                    if timer is not None:
                        timer.lap("plan")
                    window = (control_t, control_t)
                    for index in shard_range:
                        self._send(index, ("ctrl", control_t), window)
                    dispatched += fabric._relaxed._run_control(control_t, None)
                    for shard in shards:
                        if shard.outbox:
                            fabric._relaxed._flush_mail(shards)
                            break
                    for index in shard_range:
                        reply = self._recv(index)
                        reported[index] = reply[2]
                        shards[index]._queue.clear()
                    if timer is not None:
                        timer.lap("barrier")
                    continue
                if t_min is None or t_min > until_ns:
                    break
                pump_bound = until_ns
                if control_t is not None and control_t - 1 < pump_bound:
                    pump_bound = control_t - 1
                self.windows += 1
                round_mail = []
                if lookahead is not None:
                    base_bound = t_min + lookahead - 1
                    if base_bound > pump_bound:
                        base_bound = pump_bound
                    if not tied and (t_second is None or t_second > base_bound):
                        # Sole-leader fast path: one round-trip; the worker
                        # extends its own window in place against its local
                        # control-ring replica (in lockstep by construction).
                        other = t_min + lookahead
                        if t_second is not None and t_second < other:
                            other = t_second
                        lead_bound = other + lookahead - 1
                        if lead_bound > pump_bound:
                            lead_bound = pump_bound
                        if timer is not None:
                            timer.lap("plan")
                        self._send(
                            leader_index,
                            ("win", lead_bound, pump_bound, (t_second, lookahead)),
                            (t_min, lead_bound),
                        )
                        reply = self._recv(leader_index)
                        reported[leader_index] = reply[2]
                        shards[leader_index]._queue.clear()
                        dispatched += reply[3]
                        if timer is not None:
                            timer.lap("pipe")
                            timer.shift("pipe", "compute", reply[4])
                            registry.counter(
                                "fabric_sole_leader_extensions_total"
                            ).inc()
                        if reply[1]:
                            round_mail.append((leader_index, reply[1]))
                            self._broadcast_mail(round_mail, reported)
                            if timer is not None:
                                timer.lap("barrier")
                        continue
                    if tied:
                        lead_bound = base_bound
                    else:
                        other = t_min + lookahead
                        if t_second is not None and t_second < other:
                            other = t_second
                        lead_bound = other + lookahead - 1
                        if lead_bound > pump_bound:
                            lead_bound = pump_bound
                    plan = []
                    for index in shard_range:
                        top = effective[index]
                        if top is None:
                            continue
                        bound = lead_bound if index == leader_index else base_bound
                        if top > bound:
                            continue
                        plan.append((index, bound))
                else:
                    plan = [
                        (index, pump_bound)
                        for index in shard_range
                        if effective[index] is not None
                    ]
                # Fan out, then collect: the windows run concurrently in the
                # workers.  All replies are folded (and the parent replica
                # rings cleared) before the round's mail is applied, so no
                # barrier push can slip between a report and its clear.
                if timer is not None:
                    timer.lap("plan")
                    round_compute = 0.0
                for index, bound in plan:
                    self._send(index, ("win", bound, pump_bound, None), (t_min, bound))
                for index, _bound in plan:
                    reply = self._recv(index)
                    reported[index] = reply[2]
                    shards[index]._queue.clear()
                    dispatched += reply[3]
                    if timer is not None and reply[4] > round_compute:
                        round_compute = reply[4]
                    if reply[1]:
                        round_mail.append((index, reply[1]))
                if timer is not None:
                    timer.lap("pipe")
                    timer.shift("pipe", "compute", round_compute)
                if round_mail:
                    self._broadcast_mail(round_mail, reported)
                    if timer is not None:
                        timer.lap("barrier")
        except FabricBackendError:
            raise
        except BaseException:
            self._teardown(mark_stale=True)
            raise
        # Eager end-of-dispatch sync: cursors, dispatch counts and queue
        # stats are cheap and must be right the moment run() returns.
        top_ns = shared_clock._now_ns
        for index in shard_range:
            self._send(index, ("sync",))
        for index in shard_range:
            reply = self._recv(index)
            shard = shards[index]
            shard.cursor_ns = reply[1]
            shard._dispatched = reply[2]
            shard._queue.cancelled_discarded = reply[3]
            if reply[1] > top_ns:
                top_ns = reply[1]
        for shard in shards:
            shard._exit_relaxed(shared_clock)
        if top_ns > shared_clock._now_ns:
            shared_clock._now_ns = top_ns
            shared_clock._now_s = top_ns / NANOSECONDS_PER_SECOND
        fabric._relaxed.windows = self.windows
        fabric._relaxed.mail_flushed = self.mail_flushed
        if timer is not None:
            timer.lap("pipe")
            timer.finish(telemetry.profiler)
            telemetry.profiler.windows += self.windows
            registry.counter("fabric_windows_total").inc(self.windows)
            registry.counter("proc_pipe_messages_total").inc(self._pipe_messages)
        fabric._proc_stale = True
        fabric._proc_pending = self
        return dispatched

    def _broadcast_mail(self, round_mail, reported) -> None:
        """Merge the round's outboxes canonically, apply locally, broadcast.

        Collects every worker's post-apply ring top into ``reported``:
        mail application is the one place work appears on a worker's ring
        outside a window/control round-trip, and the parent replica ring
        stops mirroring it once the worker's cut-segment service state has
        advanced past the parent's (the worker runs service-completion
        events the parent only ever clears).  Stale tops here starved the
        home shard of windows, silently stranding every subsequent mailed
        frame — and its drop/deliver records — in the segment's queue.
        """
        merged = []
        for sender_index, entries in round_mail:
            merged.extend(
                (entry[1], sender_index, position, entry)
                for position, entry in enumerate(entries)
            )
        merged.sort(key=lambda item: item[:3])
        blob = [item[3] for item in merged]
        _apply_mail(self.fabric, blob)
        for index in range(len(self._conns)):
            self._send(index, ("mail", blob))
        for index in range(len(self._conns)):
            reported[index] = self._recv(index)[2]
        self.mail_flushed += len(blob)
        telemetry = self.fabric._telemetry
        if telemetry is not None:
            registry = telemetry.registry
            envelope_bytes = 0
            for entry in blob:
                if entry[0] == "tx":
                    registry.counter(
                        "fabric_mail_frames_total", segment=entry[2]
                    ).inc()
                    envelope_bytes += len(entry[4])
                elif entry[0] == "run":
                    envelope_bytes += len(entry[4])
            registry.counter("fabric_mail_entries_total").inc(len(blob))
            registry.counter("proc_envelope_bytes_total").inc(envelope_bytes)

    # -- deferred trace shipping -------------------------------------------

    def fetch_traces(self) -> None:
        """Pull each worker's record suffix over and splice it in.

        Replica-garbage emissions the parent accumulated while replicating
        barrier work are truncated first; the shared counters are rebuilt
        lazily from scratch (clear + re-fold) so the spliced streams are the
        single source of truth.
        """
        if self._fetched:
            return
        fabric = self.fabric
        for index in range(len(self._conns)):
            self._send(index, ("fin",))
        suffixes = []
        telemetry = fabric._telemetry
        for index in range(len(self._conns)):
            reply = self._recv(index)
            suffixes.append(reply[1])
            if telemetry is not None:
                telemetry.absorb_worker(index, reply[2])
        for shard, base, suffix in zip(fabric._shards, self._bases, suffixes):
            recorder = shard.trace
            fast = recorder._fast
            if fast is None:
                continue
            if len(fast) > base:
                del fast[base:]
            if len(recorder._materialized) > base:
                del recorder._materialized[base:]
            fast.extend(suffix)
        self._teardown(mark_stale=False, truncate=False)

    def discard(self) -> None:
        """Drop the pending worker results without fetching (reset/clear)."""
        if self._fetched:
            return
        self._teardown(mark_stale=False)

    def _teardown(self, mark_stale: bool, truncate: bool = True) -> None:
        """Reap workers, close pipes, strip parent replica garbage."""
        fabric = self.fabric
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []
        shared_clock = fabric.clock
        for shard, base in zip(fabric._shards, self._bases):
            if shard.relaxed:
                shard._exit_relaxed(shared_clock)
            if not truncate:
                continue
            recorder = shard.trace
            fast = recorder._fast
            if fast is not None and len(fast) > base:
                del fast[base:]
            if len(recorder._materialized) > base:
                del recorder._materialized[base:]
        fabric.trace._counters_sink.clear()
        for shard in fabric._shards:
            shard.trace._pairs_synced = 0
        if mark_stale:
            fabric._proc_stale = True
        if fabric._proc_pending is self:
            fabric._proc_pending = None
        self._fetched = True

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
        except Exception:
            pass
