"""48-bit IEEE MAC addresses.

The paper's bridge is address-driven: the learning switchlet keys its table
by source MAC, the spanning-tree switchlet registers for the *All Bridges*
multicast address, and the DEC-style protocol uses the DEC management
multicast address instead.  Those two well-known group addresses are exported
here as constants.
"""

from __future__ import annotations

from functools import total_ordering

from repro.exceptions import FrameError

MAC_LENGTH = 6


@total_ordering
class MacAddress:
    """An immutable 48-bit MAC address.

    Instances are hashable (they key the learning bridge's table) and ordered
    (802.1D breaks bridge-priority ties by comparing bridge MAC addresses).
    """

    __slots__ = ("_octets", "_text")

    def __init__(self, octets: bytes) -> None:
        if len(octets) != MAC_LENGTH:
            raise FrameError(
                f"MAC address must be {MAC_LENGTH} octets, got {len(octets)}"
            )
        self._octets = bytes(octets)
        self._text: str = ""

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (also accepts ``-`` separators)."""
        cleaned = text.strip().replace("-", ":").lower()
        parts = cleaned.split(":")
        if len(parts) != MAC_LENGTH:
            raise FrameError(f"malformed MAC address string: {text!r}")
        try:
            octets = bytes(int(part, 16) for part in parts)
        except ValueError as exc:
            raise FrameError(f"malformed MAC address string: {text!r}") from exc
        return cls(octets)

    @classmethod
    def from_int(cls, value: int) -> "MacAddress":
        """Build an address from its 48-bit integer value."""
        if not 0 <= value < (1 << 48):
            raise FrameError(f"MAC integer out of range: {value}")
        return cls(value.to_bytes(MAC_LENGTH, "big"))

    @classmethod
    def locally_administered(cls, station_id: int) -> "MacAddress":
        """Deterministically derive a unicast, locally-administered address.

        The topology builder uses this to give every NIC in a simulated
        network a unique, stable address: ``02:00:00`` plus a 24-bit station
        identifier.
        """
        if not 0 <= station_id < (1 << 24):
            raise FrameError(f"station_id out of range: {station_id}")
        return cls(b"\x02\x00\x00" + station_id.to_bytes(3, "big"))

    # -- queries -------------------------------------------------------------

    @property
    def octets(self) -> bytes:
        """The raw six octets."""
        return self._octets

    def to_int(self) -> int:
        """The 48-bit integer value (used for 802.1D bridge-ID comparisons)."""
        return int.from_bytes(self._octets, "big")

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self._octets == b"\xff" * MAC_LENGTH

    @property
    def is_multicast(self) -> bool:
        """True if the group bit (least-significant bit of the first octet) is set."""
        return bool(self._octets[0] & 0x01)

    @property
    def is_unicast(self) -> bool:
        """True if the address is neither multicast nor broadcast."""
        return not self.is_multicast

    @property
    def is_locally_administered(self) -> bool:
        """True if the locally-administered bit is set."""
        return bool(self._octets[0] & 0x02)

    # -- dunder --------------------------------------------------------------

    def __str__(self) -> str:
        # Rendered once per address: the text form is read on every packet
        # record and in every describe() string.
        text = self._text
        if not text:
            text = self._text = self._octets.hex(":")
        return text

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __hash__(self) -> int:
        return hash(self._octets)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._octets == other._octets
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        if isinstance(other, MacAddress):
            return self._octets < other._octets
        return NotImplemented


#: The Ethernet broadcast address.
BROADCAST = MacAddress(b"\xff" * MAC_LENGTH)

#: IEEE 802.1D "All Bridges" / STP multicast address.  The spanning-tree
#: switchlet registers with the node's demultiplexer for this address.
ALL_BRIDGES_MULTICAST = MacAddress.from_string("01:80:c2:00:00:00")

#: DEC management multicast address used by the DEC-style ("old") spanning
#: tree protocol the paper transitions away from.
DEC_MANAGEMENT_MULTICAST = MacAddress.from_string("09:00:2b:01:00:00")
