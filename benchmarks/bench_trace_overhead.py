"""Trace-overhead micro-benchmark.

Measures what instrumentation costs the simulator hot path now that the
trace is a dispatch hub with pluggable sinks and lazy detail rendering:

* **emit micro-benchmark** — records/second through the hub with each sink
  configuration (list, ring buffer, counting-only, null, and a gated-off
  category, which is the true floor);
* **frame blast** — an end-to-end simulated frame storm (NIC -> segment ->
  NIC, every hop tracing) per sink configuration, reporting frames/second
  and, for the bounded-memory configuration, that a million-frame run
  retains only ``capacity`` records.

Results are appended to ``BENCH_trace.json`` next to the repository root so
the performance trajectory is tracked from PR to PR.  Run directly::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py [--frames N]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import MacAddress
from repro.lan.nic import NetworkInterface
from repro.lan.segment import Segment
from repro.sim.engine import Simulator
from repro.sim.trace import CountingSink, ListSink, NullSink, RingBufferSink

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_trace.json"

#: Records emitted per micro-benchmark configuration.
EMIT_COUNT = 200_000

#: Frames pushed through the wire per blast configuration.
DEFAULT_BLAST_FRAMES = 100_000

#: Frames for the bounded-memory (ring buffer) demonstration.
BOUNDED_RUN_FRAMES = 1_000_000

#: Ring capacity for the bounded-memory demonstration.
BOUNDED_RING_CAPACITY = 10_000


def _sink_configurations():
    return {
        "list": lambda: [ListSink()],
        "ring-10k": lambda: [RingBufferSink(capacity=10_000)],
        "counting": lambda: [CountingSink()],
        "null": lambda: [NullSink()],
    }


def bench_emit() -> dict:
    """Records/second through the hub, per sink configuration."""
    results = {}
    for label, make_sinks in _sink_configurations().items():
        sim = Simulator(trace_sinks=make_sinks())
        trace = sim.trace
        detail = lambda: {"frame": "00:00:00:00:00:01 -> 00:00:00:00:00:02"}  # noqa: E731
        start = time.perf_counter()
        for _ in range(EMIT_COUNT):
            trace.emit("bench", "bench.tick", detail)
        elapsed = time.perf_counter() - start
        results[label] = round(EMIT_COUNT / elapsed)
    # The gated floor: producers skip even the closure via wants().
    sim = Simulator(trace_sinks=[ListSink()])
    trace = sim.trace
    trace.disable_category("bench.tick")
    start = time.perf_counter()
    for _ in range(EMIT_COUNT):
        if trace.wants("bench.tick"):
            trace.emit("bench", "bench.tick", lambda: {"never": "rendered"})
    elapsed = time.perf_counter() - start
    results["gated-off"] = round(EMIT_COUNT / elapsed)
    return results


def run_frame_blast(n_frames: int, sinks, telemetry: bool = False) -> dict:
    """Drive ``n_frames`` through a two-station segment; every hop traces."""
    sim = Simulator(seed=0, trace_sinks=sinks)
    if telemetry:
        sim.enable_telemetry()
    segment = Segment(sim, "lan")
    sender = NetworkInterface(sim, "tx", MacAddress.locally_administered(1))
    receiver = NetworkInterface(sim, "rx", MacAddress.locally_administered(2))
    sender.attach(segment)
    receiver.attach(segment)
    frame = EthernetFrame(
        destination=receiver.mac,
        source=sender.mac,
        ethertype=int(EtherType.IPV4),
        payload=b"\x00" * 64,
    )
    remaining = n_frames

    def on_receive(_nic, _frame) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sender.send(frame)

    receiver.set_handler(on_receive)
    start = time.perf_counter()
    sender.send(frame)
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "frames": n_frames,
        "seconds": round(elapsed, 3),
        "frames_per_second": round(n_frames / elapsed),
        "events_dispatched": sim.events_dispatched,
        "records_captured": len(sim.trace),
        "records_retained": sum(1 for _ in sim.trace),
    }


def bench_frame_blast(n_frames: int) -> dict:
    """frames/second with full tracing, per sink configuration."""
    return {
        label: run_frame_blast(n_frames, make_sinks())
        for label, make_sinks in _sink_configurations().items()
    }


def bench_telemetry_overhead(n_frames: int) -> dict:
    """frames/second with the metrics registry enabled vs default-off.

    Both runs drive the identical workload through a list sink; the
    telemetry contract says the enabled run dispatches the identical event
    count (metrics never touch simulated state) and costs only the guarded
    instrumentation, so the on/off ratio is gated like any other rate.
    """
    off = run_frame_blast(n_frames, [ListSink()])
    on = run_frame_blast(n_frames, [ListSink()], telemetry=True)
    assert on["events_dispatched"] == off["events_dispatched"], (off, on)
    assert on["records_captured"] == off["records_captured"], (off, on)
    return {
        "frames": n_frames,
        "off_frames_per_second": off["frames_per_second"],
        "on_frames_per_second": on["frames_per_second"],
        "on_off_ratio": round(
            on["frames_per_second"] / off["frames_per_second"], 3
        ),
    }


def bench_bounded_memory() -> dict:
    """A million-frame run retained in a 10k-record ring buffer."""
    result = run_frame_blast(
        BOUNDED_RUN_FRAMES, [RingBufferSink(capacity=BOUNDED_RING_CAPACITY)]
    )
    assert result["records_retained"] == BOUNDED_RING_CAPACITY, result
    assert result["records_captured"] > BOUNDED_RING_CAPACITY, result
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--frames",
        type=int,
        default=DEFAULT_BLAST_FRAMES,
        help="frames per blast configuration",
    )
    parser.add_argument(
        "--skip-bounded",
        action="store_true",
        help="skip the million-frame bounded-memory run",
    )
    args = parser.parse_args()
    if args.frames <= 0:
        parser.error("--frames must be positive")

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "emit_records_per_second": bench_emit(),
        "frame_blast": bench_frame_blast(args.frames),
        "telemetry_overhead": bench_telemetry_overhead(args.frames),
    }
    if not args.skip_bounded:
        entry["bounded_memory_1m_frames"] = bench_bounded_memory()

    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            history = []
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")

    print(json.dumps(entry, indent=2))
    blast = entry["frame_blast"]
    ratio = blast["null"]["frames_per_second"] / blast["list"]["frames_per_second"]
    print(
        f"\nnull vs list sink: {ratio:.2f}x frames/sec "
        f"({blast['list']['frames_per_second']} -> {blast['null']['frames_per_second']})"
    )
    print(f"results appended to {RESULTS_PATH}")


if __name__ == "__main__":
    main()
