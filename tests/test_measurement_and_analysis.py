"""Tests for the measurement tools, the experiment setups, and the analysis helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.figures import render_ascii_chart, render_series, series_from_results
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import render_kv, render_table
from repro.costs.model import CostModel
from repro.measurement import stats
from repro.measurement.framerate import FrameRateProbe, bridge_ceiling, interpreter_ceiling
from repro.measurement.ping import PingRunner, ping_sweep
from repro.measurement.setups import (
    build_bridged_pair,
    build_direct_pair,
    build_repeater_pair,
    build_ring,
    build_static_bridge_pair,
)
from repro.measurement.ttcp import TtcpSession


# ---------------------------------------------------------------------------
# Statistics helpers
# ---------------------------------------------------------------------------


class TestStats:
    def test_mean_median_stdev(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert stats.mean(data) == pytest.approx(2.5)
        assert stats.median(data) == pytest.approx(2.5)
        assert stats.median([1.0, 2.0, 9.0]) == pytest.approx(2.0)
        assert stats.stdev([2.0, 2.0]) == 0.0

    def test_empty_inputs(self):
        assert stats.mean([]) == 0.0
        assert stats.median([]) == 0.0
        assert stats.percentile([], 0.5) == 0.0
        assert stats.summarize([])["count"] == 0.0

    def test_percentile_bounds(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert stats.percentile(data, 0.0) == 1.0
        assert stats.percentile(data, 1.0) == 5.0
        assert stats.percentile(data, 0.5) == pytest.approx(3.0)

    def test_megabits(self):
        assert stats.megabits_per_second(1_000_000, 1.0) == pytest.approx(8.0)
        assert stats.megabits_per_second(100, 0.0) == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_summary_invariants(self, data):
        summary = stats.summarize(data)
        assert summary["min"] <= summary["median"] <= summary["max"]
        assert summary["min"] <= summary["mean"] <= summary["max"]


# ---------------------------------------------------------------------------
# Setups
# ---------------------------------------------------------------------------


class TestSetups:
    def test_pair_setups_have_expected_components(self):
        direct = build_direct_pair(seed=1)
        assert direct.device is None
        repeater = build_repeater_pair(seed=1)
        assert repeater.device is not None
        static = build_static_bridge_pair(seed=1)
        assert static.label == "static-bridge"
        bridged = build_bridged_pair(seed=1, include_spanning_tree=False)
        assert bridged.device.loader.loaded_names() == ["dumb-bridge", "learning-bridge"]
        assert bridged.ready_time < 1.0
        full = build_bridged_pair(seed=1)
        assert full.ready_time > 30.0
        assert "spanning-tree-802.1d" in full.device.loader.loaded_names()

    def test_ring_setup(self):
        ring = build_ring(n_bridges=2, seed=1)
        assert len(ring.bridges) == 2
        assert ring.left_segment is not ring.right_segment
        for bridge in ring.bridges:
            names = bridge.loader.loaded_names()
            assert "spanning-tree-dec" in names
            assert "spanning-tree-802.1d" in names
            assert "transition-control" in names

    def test_ring_requires_at_least_one_bridge(self):
        with pytest.raises(ValueError):
            build_ring(n_bridges=0)


# ---------------------------------------------------------------------------
# Ping / ttcp tools
# ---------------------------------------------------------------------------


class TestPingTool:
    def test_counts_and_rtts(self):
        setup = build_direct_pair(seed=3)
        runner = PingRunner(setup.network.sim, setup.left, setup.right.ip, 128, count=5,
                            interval=0.05)
        result = runner.run(start_time=0.1)
        assert result.sent == 5
        assert result.received == 5
        assert result.loss_fraction == 0.0
        assert len(result.rtts) == 5
        assert result.mean_rtt_ms() > 0

    def test_sweep_orders_by_size(self):
        setup = build_direct_pair(seed=3)
        results = ping_sweep(setup.network.sim, setup.left, setup.right.ip,
                             [64, 1024], start_time=0.1, count=3, interval=0.05)
        assert results[1024].summary()["mean"] > results[64].summary()["mean"]

    def test_oversized_payload_clamped(self):
        setup = build_direct_pair(seed=3)
        runner = PingRunner(setup.network.sim, setup.left, setup.right.ip, 9000, count=1)
        assert runner.payload_size <= 1472


class TestTtcpTool:
    def test_transfer_completes_and_reports(self):
        setup = build_direct_pair(seed=4)
        session = TtcpSession(setup.network.sim, setup.left, setup.right,
                              buffer_size=1024, total_bytes=50_000)
        result = session.run(start_time=0.1)
        assert result.completed
        assert result.bytes_received == 50_000
        assert result.throughput_mbps > 0
        assert result.segments_received == session.total_segments

    def test_large_writes_split_into_segments(self):
        setup = build_direct_pair(seed=4)
        session = TtcpSession(setup.network.sim, setup.left, setup.right,
                              buffer_size=8192, total_bytes=8192 * 3)
        assert session.total_segments > 3 * 5
        result = session.run(start_time=0.1)
        assert result.completed

    def test_bridged_slower_than_direct(self):
        direct = build_direct_pair(seed=5)
        direct_result = TtcpSession(direct.network.sim, direct.left, direct.right,
                                    buffer_size=4096, total_bytes=100_000).run(0.1)
        bridged = build_bridged_pair(seed=5, include_spanning_tree=False)
        bridged_result = TtcpSession(bridged.network.sim, bridged.left, bridged.right,
                                     buffer_size=4096, total_bytes=100_000).run(0.2)
        assert direct_result.throughput_mbps > bridged_result.throughput_mbps

    def test_invalid_parameters(self):
        setup = build_direct_pair(seed=6)
        with pytest.raises(ValueError):
            TtcpSession(setup.network.sim, setup.left, setup.right, buffer_size=0, total_bytes=10)
        with pytest.raises(ValueError):
            TtcpSession(setup.network.sim, setup.left, setup.right, buffer_size=10, total_bytes=0)


class TestFrameRateTool:
    def test_probe_measures_forwarding(self):
        setup = build_bridged_pair(seed=7, include_spanning_tree=False)
        sim = setup.network.sim
        session = TtcpSession(sim, setup.left, setup.right, buffer_size=1024, total_bytes=40_000)
        probe = FrameRateProbe(sim, setup.device)
        probe.start()
        session.start(0.1)
        while not session.result.completed and sim.now < 60.0:
            sim.run_until(sim.now + 0.02)
        sample = probe.stop()
        assert sample.frames > 0
        assert 0 < sample.frames_per_second < interpreter_ceiling(CostModel(), 64)

    def test_probe_requires_start(self, sim):
        probe = FrameRateProbe(sim, type("S", (), {"frames_transmitted": 0})())
        with pytest.raises(RuntimeError):
            probe.stop()

    def test_ceilings_ordering(self):
        model = CostModel()
        assert bridge_ceiling(model, 1024) < interpreter_ceiling(model, 1024)


# ---------------------------------------------------------------------------
# Analysis helpers
# ---------------------------------------------------------------------------


class TestAnalysis:
    def test_render_table_aligns_and_includes_cells(self):
        text = render_table(["a", "column"], [[1, "x"], [22, "yy"]], title="T")
        assert "T" in text
        assert "| 22" in text
        assert "column" in text

    def test_render_kv(self):
        text = render_kv({"alpha": 1, "beta": 2.5}, title="K")
        assert "alpha" in text and "2.500" in text

    def test_render_series_handles_missing_points(self):
        text = render_series("x", [1, 2, 3], {"s": [1.0, 2.0]})
        assert "-" in text

    def test_render_ascii_chart(self):
        text = render_ascii_chart({"s": [1.0, 2.0, 4.0]}, width=10, title="chart")
        assert "chart" in text
        assert "#" in text

    def test_series_from_results(self):
        class R:
            def __init__(self, v):
                self.value = v

        results = {2: R(20), 1: R(10)}
        assert series_from_results(results, "value") == [10, 20]

    def test_experiment_report(self):
        report = ExperimentReport("title")
        report.add("Figure 10", "throughput", "16 Mb/s", "13.2 Mb/s", "simulated")
        report.add("Figure 9", "latency", "x", "y")
        assert len(report.find("Figure 10")) == 1
        assert report.find("Figure 9", "latency")[0].measured_value == "y"
        rendered = report.render()
        assert "Figure 10" in rendered and "13.2 Mb/s" in rendered
