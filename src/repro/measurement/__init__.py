"""Measurement tools and experimental setups.

This package contains the workloads and probes the paper's evaluation uses:

* :mod:`~repro.measurement.setups` — the direct / repeater / bridged pair
  configurations (Figures 7, 8) and the Section 7.5 ring;
* :mod:`~repro.measurement.ping` — ICMP echo latency (Figure 9);
* :mod:`~repro.measurement.ttcp` — bulk throughput and frame rates
  (Figure 10, Section 7.3);
* :mod:`~repro.measurement.framerate` — forwarding-rate probes and the
  cost-model ceilings;
* :mod:`~repro.measurement.agility` — the function-agility experiment
  (Section 7.5);
* :mod:`~repro.measurement.convergence` — detection/reconvergence/loss
  reporting around scripted faults (:mod:`repro.faults`);
* :mod:`~repro.measurement.stats` — summary statistics helpers.
"""

from repro.measurement.convergence import ConvergenceProbe, ConvergenceReport
from repro.measurement.ping import PingRunner, PingResult, ping_sweep
from repro.measurement.ttcp import TtcpSession, TtcpResult, ttcp_sweep
from repro.measurement.framerate import CounterRateProbe, FrameRateProbe, FrameRateSample
from repro.measurement.agility import AgilityProbe, AgilityResult
from repro.measurement.setups import (
    PairSetup,
    RingSetup,
    build_direct_pair,
    build_repeater_pair,
    build_bridged_pair,
    build_static_bridge_pair,
    build_ring,
    PAIR_BUILDERS,
)
from repro.measurement import stats

__all__ = [
    "PingRunner",
    "PingResult",
    "ping_sweep",
    "TtcpSession",
    "TtcpResult",
    "ttcp_sweep",
    "FrameRateProbe",
    "CounterRateProbe",
    "FrameRateSample",
    "AgilityProbe",
    "AgilityResult",
    "ConvergenceProbe",
    "ConvergenceReport",
    "PairSetup",
    "RingSetup",
    "build_direct_pair",
    "build_repeater_pair",
    "build_bridged_pair",
    "build_static_bridge_pair",
    "build_ring",
    "PAIR_BUILDERS",
    "stats",
]
