"""Event tracing.

Every component in the reproduction can append structured records to the
simulator's :class:`TraceRecorder`.  The measurement tools (ping, ttcp, the
agility probe) and the protocol-transition benchmark (Table 1) are all built
by filtering this trace, which keeps measurement completely decoupled from
the components being measured — the same property the paper gets from
instrumenting its bridge externally with ``ping``/``ttcp``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.sim.clock import Clock


@dataclass(frozen=True)
class TraceRecord:
    """A single trace record.

    Attributes:
        time: simulated time (seconds) the record was emitted.
        source: name of the component that emitted the record
            (e.g. ``"bridge1"``, ``"host-a"``, ``"control-switchlet"``).
        category: machine-readable record category
            (e.g. ``"frame.rx"``, ``"stp.state"``, ``"transition"``).
        detail: free-form key/value payload.
    """

    time: float
    source: str
    category: str
    detail: dict = field(default_factory=dict)


class TraceRecorder:
    """An append-only, filterable list of :class:`TraceRecord` objects."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._records: list[TraceRecord] = []
        self._enabled = True
        self._listeners: list[Callable[[TraceRecord], None]] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def enabled(self) -> bool:
        """Whether records are currently being captured."""
        return self._enabled

    def disable(self) -> None:
        """Stop capturing records (listeners also stop firing)."""
        self._enabled = False

    def enable(self) -> None:
        """Resume capturing records."""
        self._enabled = True

    def clear(self) -> None:
        """Drop all captured records."""
        self._records.clear()

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked synchronously for every new record."""
        self._listeners.append(listener)

    def record(self, source: str, category: str, **detail: Any) -> Optional[TraceRecord]:
        """Append a record stamped with the current simulated time."""
        if not self._enabled:
            return None
        entry = TraceRecord(
            time=self._clock.now, source=source, category=category, detail=dict(detail)
        )
        self._records.append(entry)
        for listener in self._listeners:
            listener(entry)
        return entry

    def filter(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> list[TraceRecord]:
        """Return records matching every provided criterion."""
        selected = []
        for entry in self._records:
            if category is not None and entry.category != category:
                continue
            if source is not None and entry.source != source:
                continue
            if since is not None and entry.time < since:
                continue
            if until is not None and entry.time > until:
                continue
            selected.append(entry)
        return selected

    def count(self, category: Optional[str] = None, source: Optional[str] = None) -> int:
        """Number of records matching the criteria."""
        return len(self.filter(category=category, source=source))

    def last(
        self, category: Optional[str] = None, source: Optional[str] = None
    ) -> Optional[TraceRecord]:
        """The most recent record matching the criteria, if any."""
        matches = self.filter(category=category, source=source)
        return matches[-1] if matches else None
