"""A single-server processing queue.

The paper's bridge is effectively a single thread of Caml code: frames are
handled one at a time, and a frame arriving while another is being processed
waits.  (Section 7.4 notes that the Caml threads run entirely in user mode,
"thus, no speedup occurs due to our multiprocessor".)  :class:`CpuQueue`
models exactly that: work items are served in FIFO order, one at a time, each
occupying the server for its submitted cost.

The same class models an end host's protocol processing and the C repeater's
loop, just with different costs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.sim.engine import Simulator


class CpuQueue:
    """A FIFO, single-server queue of timed work items.

    Args:
        sim: owning simulator.
        name: used in traces (e.g. ``"bridge1.cpu"``).
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._service_label = f"{name}:service"
        self._pending: Deque[Tuple[float, Callable[[], None]]] = deque()
        self._busy = False
        self._stall_until = 0.0
        # The single server has at most one item in service; holding its
        # callback here lets service completion reuse one bound method
        # instead of allocating a closure per item.
        self._in_service_callback: Optional[Callable[[], None]] = None
        # Statistics
        self.items_processed = 0
        self.busy_time = 0.0
        self.max_queue_depth = 0

    @property
    def queue_depth(self) -> int:
        """Number of items waiting (not including the one in service)."""
        return len(self._pending)

    @property
    def busy(self) -> bool:
        """Whether an item is currently in service."""
        return self._busy

    def submit(self, cost_seconds: float, callback: Callable[[], None]) -> None:
        """Submit a work item that occupies the CPU for ``cost_seconds``.

        ``callback`` runs when the item *finishes* service.
        """
        if cost_seconds < 0:
            cost_seconds = 0.0
        self._pending.append((cost_seconds, callback))
        self.max_queue_depth = max(self.max_queue_depth, len(self._pending))
        if not self._busy:
            self._serve_next()

    def stall(self, duration_seconds: float) -> None:
        """Block the server for ``duration_seconds`` (models a GC pause).

        Items already queued wait; items submitted during the stall queue
        behind them.
        """
        if duration_seconds <= 0:
            return
        release = self.sim.now + duration_seconds
        self._stall_until = max(self._stall_until, release)
        trace = self.sim.trace
        if trace.wants("cpu.stall"):
            # Eager detail: the queue depth must be captured at stall time,
            # and stalls are rare (GC cadence), so laziness buys nothing.
            trace.emit(
                self.name,
                "cpu.stall",
                {"duration": duration_seconds, "queued": len(self._pending)},
            )

    def _serve_next(self) -> None:
        if not self._pending:
            self._busy = False
            return
        self._busy = True
        cost, callback = self._pending.popleft()
        stall = self._stall_until
        total = cost if stall <= 0.0 else cost + max(0.0, stall - self.sim.now)
        self.busy_time += cost
        self.items_processed += 1
        self._in_service_callback = callback
        self.sim.schedule(total, self._finish, label=self._service_label)

    def _finish(self) -> None:
        callback = self._in_service_callback
        self._in_service_callback = None
        callback()
        self._serve_next()

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of elapsed simulated time the server spent in service."""
        total = self.sim.now if elapsed is None else elapsed
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_time / total)
