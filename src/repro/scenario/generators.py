"""Seeded random topology generators, registered as ordinary scenarios.

Every hand-written catalog entry is a topology someone thought of; these
factories emit the ones nobody would write down.  Each generator is a pure
function of its parameters — the ``seed`` drives a private
:class:`random.Random`, so ``gen/tree`` with ``depth=3, fanout=2, seed=7``
is *one* reproducible topology and ``seed`` is an ordinary matrix axis,
sweepable exactly like a bandwidth.  The generated specs are valid
:class:`~repro.scenario.spec.ScenarioSpec` instances: they compile on every
engine configuration, round-trip through the interchange format, and feed
the scenario fuzzer (``tools/fuzz_scenarios.py``) with arbitrary shapes for
the engine-mode invariance oracle.

Shapes:

* ``gen/tree`` — a random bridge tree: each interior segment sprouts
  1..``fanout`` child segments (seeded), hosts on the leaves.  Loop-free,
  learning bridges only.
* ``gen/fattree`` — a leaf-spine Clos: every leaf bridge uplinks to a
  seeded subset of the spine segments.  Redundant paths, so the bridges
  run the spanning tree.
* ``gen/mesh`` — a random connected segment graph: a seeded spanning tree
  plus ``extra_links`` random shortcut bridges.  Spanning tree required.
* ``gen/smallworld`` — a closed bridge ring with seeded long-range shortcut
  bridges (Newman–Watts-style rewiring of the ring, which keeps the graph
  connected).  Spanning tree required.

Two structural invariants every generator maintains:

* **Tie staggering** — per-segment propagation delays are offset by
  ``2^index`` nanoseconds (the ``ring/failover`` idiom, strengthened):
  on loops, broadcasts race along multiple paths and equal cumulative
  cable delays would land order-sensitive same-instant events the
  canonical-merge contract deliberately refuses to order.  Powers of two
  make every distinct *set* of traversed cables sum to a distinct delay
  (unequal cable lengths are the physical truth anyway).  Relatedly, no
  two generated devices ever share more than one segment: parallel
  bridges between the same segment pair hear a broadcast at the same
  instant on one wire and retransmit onto the other at the same
  nanosecond — a structurally guaranteed non-commuting tie.  Staggering
  removes the *static* tie classes only: queueing feedback (a frame's
  transmit time includes waits behind other frames) can still re-align
  two causal chains onto one wire at the same nanosecond.  Those residual
  ties are deterministic per seed and are exactly the case the
  canonical-merge contract scopes out; the fuzzer detects them on the
  reference trace (same-instant multi-sender enqueues) and excuses
  relaxed-mode divergence at or after the first tie instant — see
  ``tools/fuzz_scenarios.py``.  The loopy generators therefore register
  with ``tie_prone=True``: catalog-wide *plain* relaxed-vs-strict
  bit-identity tests skip them (the fuzzer owns that contract with its
  tie-horizon refinement), while strict-mode sharding identities still
  cover them unconditionally.
* **Compressed 802.1D timers** — loopy shapes run the spanning tree with
  :data:`FAST_STP_TIMERS` by default (overridable per call), so whole
  convergence episodes fit in a few simulated seconds and a fuzz case
  stays cheap; ``ready_time`` is derived from the timers exactly as the
  ``ring/failover`` entry derives it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.lan.segment import DEFAULT_BANDWIDTH_BPS, DEFAULT_PROPAGATION_DELAY
from repro.scenario.registry import register_scenario
from repro.scenario.spec import (
    BASIC_WARMUP,
    DeviceSpec,
    HostSpec,
    PortSpec,
    ScenarioSpec,
    SegmentSpec,
    SwitchletSpec,
)

#: Registered generator scenario names (the docs-coverage contract:
#: every name here must be documented in ``docs/topology-interchange.md``).
GENERATORS = ("gen/tree", "gen/fattree", "gen/mesh", "gen/smallworld")

#: Compressed 802.1D timers for generated loopy topologies: whole
#: listening -> learning -> forwarding walks in ~4 simulated seconds.
FAST_STP_TIMERS = {"hello_time": 0.5, "max_age": 2.5, "forward_delay": 1.0}


def _stp_ready_time(hello_time: float, forward_delay: float) -> float:
    """The ``ring/failover`` formula: two forwarding-delay stages plus a
    hello round of margin."""
    return 2.0 * forward_delay + 2.0 * hello_time + 1.0


def _segment(index: int, name: str, bandwidth_bps: float) -> SegmentSpec:
    # 2^index ns stagger: distinct segment sets always sum to distinct
    # path delays (exponent capped so huge swept topologies stay sane —
    # beyond the cap the uniqueness guarantee lapses, far outside the
    # fuzzed size space).
    return SegmentSpec(
        name,
        bandwidth_bps=bandwidth_bps,
        propagation_delay=DEFAULT_PROPAGATION_DELAY + (1 << min(index, 20)) * 1e-9,
    )


def _learning_stack(forward_delay: float = 0.0) -> Tuple[SwitchletSpec, ...]:
    aging = {"aging_time": forward_delay} if forward_delay else {}
    return (
        SwitchletSpec("dumb-bridge"),
        SwitchletSpec("learning-bridge", aging),
    )


def _stp_stack(
    hello_time: float, max_age: float, forward_delay: float
) -> Tuple[SwitchletSpec, ...]:
    # Learning aging is shortened to the forwarding delay (the TCN-style
    # approximation the failover scenario uses) so post-reconvergence
    # traffic reroutes instead of black-holing on stale entries.
    return _learning_stack(forward_delay) + (
        SwitchletSpec(
            "spanning-tree",
            {
                "autostart": True,
                "hello_time": hello_time,
                "max_age": max_age,
                "forward_delay": forward_delay,
            },
        ),
    )


def _bridge(
    name: str, segments: Tuple[str, ...], stack: Tuple[SwitchletSpec, ...]
) -> DeviceSpec:
    return DeviceSpec(
        name,
        kind="active-node",
        ports=tuple(
            PortSpec(f"eth{index}", segment)
            for index, segment in enumerate(segments)
        ),
        switchlets=stack,
    )


def _check_positive(**values: int) -> None:
    for key, value in values.items():
        if value < 1:
            raise ValueError(f"{key} must be at least 1 (got {value})")


@register_scenario(
    "gen/tree",
    description="seeded random bridge tree (depth x fanout), hosts on the leaves",
    axes=("depth", "fanout", "hosts_per_leaf", "seed", "bandwidth_bps"),
)
def generated_tree(
    depth: int = 2,
    fanout: int = 2,
    hosts_per_leaf: int = 1,
    seed: int = 0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
) -> ScenarioSpec:
    """Each interior segment sprouts 1..``fanout`` child segments through a
    learning bridge; ``hosts_per_leaf`` hosts sit on every depth-``depth``
    segment and one host on the root, so there is always end-to-end traffic
    to drive.  Loop-free by construction."""
    _check_positive(depth=depth, fanout=fanout, hosts_per_leaf=hosts_per_leaf)
    rng = random.Random(f"gen/tree:{seed}")
    segments: List[SegmentSpec] = [_segment(0, "s0", bandwidth_bps)]
    devices: List[DeviceSpec] = []
    # (segment name, depth) frontier, expanded in creation order.
    frontier: List[Tuple[str, int]] = [("s0", 0)]
    leaves: List[str] = []
    stack = _learning_stack()
    while frontier:
        parent, level = frontier.pop(0)
        if level == depth:
            leaves.append(parent)
            continue
        for _ in range(rng.randint(1, fanout)):
            index = len(segments)
            child = f"s{index}"
            segments.append(_segment(index, child, bandwidth_bps))
            devices.append(_bridge(f"b{len(devices) + 1}", (parent, child), stack))
            frontier.append((child, level + 1))
    hosts = [HostSpec("s0h1", "s0")]
    for leaf in leaves:
        hosts.extend(
            HostSpec(f"{leaf}h{index + 1}", leaf) for index in range(hosts_per_leaf)
        )
    return ScenarioSpec(
        name="gen/tree",
        label="gen-tree",
        description="seeded random bridge tree",
        segments=tuple(segments),
        hosts=tuple(hosts),
        devices=tuple(devices),
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "gen/fattree",
    description="seeded leaf-spine Clos: leaf bridges uplink to a random spine subset",
    axes=("spines", "leaves", "hosts_per_leaf", "seed", "bandwidth_bps"),
    tie_prone=True,
)
def generated_fattree(
    spines: int = 2,
    leaves: int = 3,
    hosts_per_leaf: int = 1,
    seed: int = 0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    hello_time: float = FAST_STP_TIMERS["hello_time"],
    max_age: float = FAST_STP_TIMERS["max_age"],
    forward_delay: float = FAST_STP_TIMERS["forward_delay"],
) -> ScenarioSpec:
    """``spines`` spine segments, ``leaves`` leaf segments; every leaf
    uplinks to a seeded non-empty subset of the spines (spine 0 always
    included, so the fabric is connected), one two-port bridge per uplink —
    so every bridge spans a distinct (leaf, spine) pair and no two bridges
    share more than one segment (the no-parallel-paths tie invariant).
    Multiple uplinks mean redundant paths, so the bridges run the
    (compressed-timer) spanning tree."""
    _check_positive(spines=spines, leaves=leaves, hosts_per_leaf=hosts_per_leaf)
    rng = random.Random(f"gen/fattree:{seed}")
    segments = [_segment(index, f"sp{index}", bandwidth_bps) for index in range(spines)]
    stack = _stp_stack(hello_time, max_age, forward_delay)
    devices: List[DeviceSpec] = []
    hosts: List[HostSpec] = []
    for leaf in range(leaves):
        index = len(segments)
        name = f"lf{leaf}"
        segments.append(_segment(index, name, bandwidth_bps))
        uplinks = ["sp0"] + [
            f"sp{spine}" for spine in range(1, spines) if rng.random() < 0.5
        ]
        for up, spine in enumerate(uplinks):
            devices.append(
                _bridge(f"b{leaf + 1}u{up + 1}", (name, spine), stack)
            )
        hosts.extend(
            HostSpec(f"{name}h{index + 1}", name) for index in range(hosts_per_leaf)
        )
    return ScenarioSpec(
        name="gen/fattree",
        label="gen-fattree",
        description="seeded leaf-spine Clos fabric",
        segments=tuple(segments),
        hosts=tuple(hosts),
        devices=tuple(devices),
        ready_time=_stp_ready_time(hello_time, forward_delay),
    )


@register_scenario(
    "gen/mesh",
    description="seeded random connected segment mesh (spanning tree + shortcut bridges)",
    axes=("n_segments", "extra_links", "hosts_per_segment", "seed", "bandwidth_bps"),
    tie_prone=True,
)
def generated_mesh(
    n_segments: int = 4,
    extra_links: int = 2,
    hosts_per_segment: int = 1,
    seed: int = 0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    hello_time: float = FAST_STP_TIMERS["hello_time"],
    max_age: float = FAST_STP_TIMERS["max_age"],
    forward_delay: float = FAST_STP_TIMERS["forward_delay"],
) -> ScenarioSpec:
    """A seeded random spanning tree over ``n_segments`` segments (segment
    ``i`` bridges to a random earlier segment, so the mesh is connected)
    plus up to ``extra_links`` shortcut bridges between random *unused*
    pairs — each extra link adds one independent cycle for the spanning
    tree to break.  Pairs never repeat (the no-parallel-paths tie
    invariant), so a dense request on a small mesh yields fewer shortcuts
    than asked."""
    _check_positive(n_segments=n_segments, hosts_per_segment=hosts_per_segment)
    if extra_links < 0:
        raise ValueError(f"extra_links cannot be negative (got {extra_links})")
    rng = random.Random(f"gen/mesh:{seed}")
    segments = [_segment(index, f"m{index}", bandwidth_bps) for index in range(n_segments)]
    stack = _stp_stack(hello_time, max_age, forward_delay)
    devices = []
    used_pairs = set()
    for index in range(1, n_segments):
        parent = rng.randrange(index)
        used_pairs.add((parent, index))
        devices.append(_bridge(f"b{index}", (f"m{parent}", f"m{index}"), stack))
    free_pairs = [
        (left, right)
        for left in range(n_segments)
        for right in range(left + 1, n_segments)
        if (left, right) not in used_pairs
    ]
    for extra, (left, right) in enumerate(
        rng.sample(free_pairs, min(extra_links, len(free_pairs)))
    ):
        devices.append(_bridge(f"x{extra + 1}", (f"m{left}", f"m{right}"), stack))
    hosts = tuple(
        HostSpec(f"m{index}h{host + 1}", f"m{index}")
        for index in range(n_segments)
        for host in range(hosts_per_segment)
    )
    return ScenarioSpec(
        name="gen/mesh",
        label="gen-mesh",
        description="seeded random connected segment mesh",
        segments=tuple(segments),
        hosts=hosts,
        devices=tuple(devices),
        ready_time=(
            _stp_ready_time(hello_time, forward_delay)
            if devices
            else BASIC_WARMUP
        ),
    )


@register_scenario(
    "gen/smallworld",
    description="closed bridge ring with seeded long-range shortcut bridges",
    axes=("n_segments", "shortcut_p", "hosts_per_segment", "seed", "bandwidth_bps"),
    tie_prone=True,
)
def generated_smallworld(
    n_segments: int = 6,
    shortcut_p: float = 0.3,
    hosts_per_segment: int = 1,
    seed: int = 0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    hello_time: float = FAST_STP_TIMERS["hello_time"],
    max_age: float = FAST_STP_TIMERS["max_age"],
    forward_delay: float = FAST_STP_TIMERS["forward_delay"],
) -> ScenarioSpec:
    """A closed ring of ``n_segments`` bridged segments (one cycle already,
    like ``ring/failover``) rewired small-world style: each segment adds a
    long-range shortcut bridge with probability ``shortcut_p`` to a random
    non-adjacent segment.  Shortcuts are *added*, never substituted
    (the Newman–Watts variant), so the ring — and connectivity — survives
    any seed."""
    if n_segments < 3:
        raise ValueError(f"a small-world ring needs >= 3 segments (got {n_segments})")
    _check_positive(hosts_per_segment=hosts_per_segment)
    if not 0.0 <= shortcut_p <= 1.0:
        raise ValueError(f"shortcut_p {shortcut_p} outside [0, 1]")
    rng = random.Random(f"gen/smallworld:{seed}")
    segments = [
        _segment(index, f"w{index}", bandwidth_bps) for index in range(n_segments)
    ]
    stack = _stp_stack(hello_time, max_age, forward_delay)
    devices = [
        _bridge(f"b{index + 1}", (f"w{index}", f"w{(index + 1) % n_segments}"), stack)
        for index in range(n_segments)
    ]
    shortcuts = 0
    used_pairs = set()
    for index in range(n_segments):
        if rng.random() >= shortcut_p:
            continue
        adjacent = {index, (index + 1) % n_segments, (index - 1) % n_segments}
        candidates = [
            other
            for other in range(n_segments)
            if other not in adjacent
            and tuple(sorted((index, other))) not in used_pairs
        ]
        if not candidates:
            continue
        shortcuts += 1
        target = rng.choice(candidates)
        used_pairs.add(tuple(sorted((index, target))))
        devices.append(_bridge(f"x{shortcuts}", (f"w{index}", f"w{target}"), stack))
    hosts = tuple(
        HostSpec(f"w{index}h{host + 1}", f"w{index}")
        for index in range(n_segments)
        for host in range(hosts_per_segment)
    )
    return ScenarioSpec(
        name="gen/smallworld",
        label="gen-smallworld",
        description="small-world rewired bridge ring",
        segments=tuple(segments),
        hosts=hosts,
        devices=tuple(devices),
        ready_time=_stp_ready_time(hello_time, forward_delay),
    )


#: Name -> bounded parameter space the fuzzer draws from.  Values are
#: (low, high) inclusive integer ranges; the fuzzer keeps topologies small
#: so one oracle case stays cheap.
FUZZ_PARAM_SPACE: Dict[str, Dict[str, Tuple[int, int]]] = {
    "gen/tree": {"depth": (1, 2), "fanout": (1, 3), "hosts_per_leaf": (1, 2)},
    "gen/fattree": {"spines": (1, 3), "leaves": (2, 4), "hosts_per_leaf": (1, 2)},
    "gen/mesh": {
        "n_segments": (2, 6),
        "extra_links": (0, 2),
        "hosts_per_segment": (1, 2),
    },
    "gen/smallworld": {"n_segments": (3, 6), "hosts_per_segment": (1, 2)},
}
