"""The discrete-event simulator.

:class:`Simulator` ties the :class:`~repro.sim.clock.Clock` and the
:class:`~repro.sim.events.EventQueue` together and provides the scheduling
API that the rest of the library uses:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` — one-shot events,
* :meth:`Simulator.run` / :meth:`Simulator.run_until` / :meth:`Simulator.step`
  — drive the simulation,
* :attr:`Simulator.trace` — a :class:`~repro.sim.trace.TraceRecorder` every
  component can append measurement records to.

A single simulator instance is shared by every host, LAN segment and active
node in an experiment; the :class:`~repro.lan.topology.NetworkBuilder` wires
that up.

For topologies too large for one engine, the same scheduling surface is
provided per shard by :class:`repro.sim.shard.EngineShard` under the
:class:`repro.sim.fabric.ShardedSimulator` coordinator — sharded runs are
bit-identical to this single engine (see :mod:`repro.sim.fabric`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.exceptions import SimulationError
from repro.sim.clock import Clock, NANOSECONDS_PER_SECOND, seconds_to_ns
from repro.sim.events import Event, EventQueue
from repro.sim.random_source import RandomSource
from repro.sim.trace import TraceRecorder, TraceSink


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        seed: seed for the simulator-owned :class:`RandomSource`.  Two
            simulators constructed with the same seed and driven by the same
            code produce identical event sequences and traces.
        trace_sinks: optional trace sinks to install instead of the default
            :class:`~repro.sim.trace.ListSink` (e.g. a bounded
            :class:`~repro.sim.trace.RingBufferSink` for very long runs).
    """

    #: Whether this engine is executing under the fabric's relaxed sync mode.
    #: Always ``False`` for the single engine; :class:`~repro.sim.shard.
    #: EngineShard` toggles its instance attribute during relaxed dispatches.
    #: Components (the LAN segment in particular) branch on this to pick
    #: between the classic event path and the relaxed express/mailbox paths.
    relaxed = False

    #: Telemetry state (:class:`repro.telemetry.Telemetry`), or ``None`` when
    #: telemetry is off — the only thing the hot paths ever test.  A class
    #: attribute so the default-off case costs nothing per instance.
    _telemetry = None

    def __init__(
        self, seed: int = 0, trace_sinks: Optional[Iterable[TraceSink]] = None
    ) -> None:
        self.clock = Clock()
        self.random = RandomSource(seed)
        self.trace = TraceRecorder(self.clock, sinks=trace_sinks)
        self._queue = EventQueue()
        self._running = False
        self._dispatched = 0
        self._auto_station_ids: dict = {}

    def auto_station_id(self, base: int) -> int:
        """Allocate the next automatic station id in the ``base`` namespace.

        Station classes (active nodes, baseline repeaters/bridges) draw their
        auto-assigned interface MAC ids from here, one counter per namespace
        base **per engine**, so two simulations built in the same process
        allocate identical addresses — runs stay bit-for-bit reproducible.
        """
        next_id = self._auto_station_ids.get(base, base)
        self._auto_station_ids[base] = next_id + 1
        return next_id

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self.clock.now_ns

    @property
    def events_dispatched(self) -> int:
        """Total number of events that have fired since construction/reset."""
        return self._dispatched

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire (O(1))."""
        return len(self._queue)

    @property
    def cancelled_events_discarded(self) -> int:
        """Cancelled events the queue has physically dropped so far."""
        return self._queue.cancelled_discarded

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay_seconds: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay_seconds`` from now.

        Args:
            delay_seconds: non-negative delay in seconds.
            callback: zero-argument callable.
            label: human-readable label recorded on the event.

        Returns:
            The scheduled :class:`Event`, which can be cancelled.

        Raises:
            SchedulingError: if ``delay_seconds`` is negative.
        """
        when_ns = self.clock.now_ns + seconds_to_ns(delay_seconds)
        return self.schedule_at_ns(when_ns, callback, label)

    def schedule_at(
        self, when_seconds: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``when_seconds``."""
        return self.schedule_at_ns(seconds_to_ns(when_seconds), callback, label)

    def schedule_at_ns(
        self, when_ns: int, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute time ``when_ns`` (nanoseconds)."""
        if when_ns < self.clock._now_ns:
            # Delegate to the queue for the canonical error message.
            self._queue.validate_schedule_time(self.clock.now_ns, when_ns)
        return self._queue.push(when_ns, callback, label)

    def call_soon(self, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at the current simulated time (after pending work)."""
        return self._queue.push(self.clock.now_ns, callback, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Dispatch a single event.

        Returns:
            ``True`` if an event was dispatched, ``False`` if the queue was
            empty.
        """
        event = self._queue.pop()
        if event is None:
            return False
        # Inlined clock advance: schedule-time validation guarantees event
        # times are never behind the clock, and the heap pops in time order.
        clock = self.clock
        time_ns = event.time_ns
        if time_ns > clock._now_ns:
            clock._now_ns = time_ns
            clock._now_s = time_ns / NANOSECONDS_PER_SECOND
        self._dispatched += 1
        event.callback()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` is reached).

        Returns:
            The number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() called re-entrantly")
        if self._telemetry is not None:
            return self._run_instrumented(None, max_events)
        self._running = True
        dispatched = 0
        try:
            while self._queue:
                if max_events is not None and dispatched >= max_events:
                    break
                if not self.step():
                    break
                dispatched += 1
        finally:
            self._running = False
        return dispatched

    def run_until(self, until_seconds: float, max_events: Optional[int] = None) -> int:
        """Run events with firing times ``<= until_seconds``.

        The clock is advanced to ``until_seconds`` at the end even if the
        queue drained earlier, so that back-to-back ``run_until`` calls see a
        monotonically advancing clock.

        Returns:
            The number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run_until() called re-entrantly")
        until_ns = seconds_to_ns(until_seconds)
        if until_ns < self.clock.now_ns:
            raise SimulationError(
                f"run_until({until_seconds}s) is earlier than the current "
                f"time {self.clock.now}s"
            )
        if self._telemetry is not None:
            return self._run_instrumented(until_ns, max_events)
        self._running = True
        dispatched = 0
        try:
            while True:
                if max_events is not None and dispatched >= max_events:
                    break
                next_time = self._queue.peek_time_ns()
                if next_time is None or next_time > until_ns:
                    break
                self.step()
                dispatched += 1
            if self.clock.now_ns < until_ns:
                self.clock.advance_to_ns(until_ns)
        finally:
            self._running = False
        return dispatched

    def run_for(self, duration_seconds: float, max_events: Optional[int] = None) -> int:
        """Run for ``duration_seconds`` of simulated time starting from now."""
        return self.run_until(self.now + duration_seconds, max_events=max_events)

    def _run_instrumented(self, until_ns: Optional[int], max_events: Optional[int]) -> int:
        """The telemetry-on twin of :meth:`run`/:meth:`run_until`.

        A deliberate duplicate of the dispatch loops: the default-off path
        keeps its original shape with zero extra work per event, and this
        loop adds queue high-water tracking, dispatch counting and one wall
        span per call.  The wall clock is read through
        :mod:`repro.telemetry.spans` so the overhead test can prove the
        off path never reaches it.
        """
        from repro.telemetry import spans

        telemetry = self._telemetry
        start = spans.perf_counter()
        self._running = True
        dispatched = 0
        queue = self._queue
        high_water = len(queue)
        try:
            while True:
                if max_events is not None and dispatched >= max_events:
                    break
                next_time = queue.peek_time_ns()
                if next_time is None or (until_ns is not None and next_time > until_ns):
                    break
                self.step()
                dispatched += 1
                pending = len(queue)
                if pending > high_water:
                    high_water = pending
            if until_ns is not None and self.clock.now_ns < until_ns:
                self.clock.advance_to_ns(until_ns)
        finally:
            self._running = False
            elapsed = spans.perf_counter() - start
            registry = telemetry.registry
            registry.counter("engine_events_dispatched").inc(dispatched)
            registry.gauge("engine_queue_high_water").set_max(high_water)
            telemetry.profiler.add("compute", elapsed)
            telemetry.profiler.add_total(elapsed)
        return dispatched

    def enable_telemetry(self):
        """Attach telemetry state to this engine (idempotent).

        Returns the :class:`repro.telemetry.Telemetry` instance.  Metrics
        are deterministic functions of the event stream and wall spans are
        out-of-band, so enabling this never changes a simulation outcome.
        """
        if self._telemetry is None:
            from repro.telemetry import Telemetry

            self._telemetry = Telemetry(shards=1)
        return self._telemetry

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero.

        Also rewinds the automatic station-id namespaces, so a topology
        rebuilt on a reset simulator allocates the same addresses as on a
        fresh one.
        """
        self._queue.clear()
        self.clock.reset()
        self.trace.clear()
        self._dispatched = 0
        self._auto_station_ids.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.6f}s, pending={self.pending_events}, "
            f"dispatched={self._dispatched})"
        )
