"""Layer composition: the Ethernet demultiplexer and the host protocol stack.

Two pieces live here:

* :class:`EthernetDemux` — the lowest layer of the paper's network loader:
  "it then demultiplexes these frames based on the Ethernet protocol
  identifier".  The same class is reused inside the active node (where
  switchlets register for EtherTypes and multicast addresses) and inside
  hosts.

* :class:`HostStack` — the thin end-station stack (ARP + minimal IP + UDP +
  ICMP echo) that the measurement hosts run.  It is *not* the active node's
  stack; the node builds its own from switchlets.  Keeping a conventional
  host stack lets ``ping`` and ``ttcp`` traffic cross the bridge exactly the
  way the paper's Linux hosts generated it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame, MAX_PAYLOAD
from repro.ethernet.mac import BROADCAST, MacAddress
from repro.exceptions import PacketError, ProtocolError
from repro.netstack.arp import ArpOperation, ArpPacket
from repro.netstack.icmp import IcmpMessage, IcmpType
from repro.netstack.ip import IPV4_HEADER_LENGTH, IPv4Address, IPv4Packet, IpProtocol
from repro.netstack.udp import UDP_HEADER_LENGTH, UdpDatagram

FrameCallback = Callable[[EthernetFrame], None]
UdpHandler = Callable[[bytes, Tuple[IPv4Address, int]], None]
IcmpHandler = Callable[[IcmpMessage, IPv4Address], None]
SendFrame = Callable[[EthernetFrame], None]

#: Maximum UDP payload that fits in a single unfragmented Ethernet frame.
MAX_UDP_PAYLOAD = MAX_PAYLOAD - IPV4_HEADER_LENGTH - UDP_HEADER_LENGTH

#: Maximum ICMP echo data that fits in a single unfragmented Ethernet frame.
MAX_ICMP_PAYLOAD = MAX_PAYLOAD - IPV4_HEADER_LENGTH - 8


class EthernetDemux:
    """Dispatch received frames by EtherType (and optionally by destination).

    Handlers registered for an EtherType receive every accepted frame with
    that type.  Handlers registered for a destination MAC address (used by
    the spanning-tree switchlets to claim the All-Bridges or DEC multicast
    groups) take precedence over EtherType handlers, mirroring the paper's
    demultiplexer where the spanning-tree switchlet "registers with the
    demultiplexer requesting packets addressed to the All Bridges multicast
    address" while "all other packets continue to be sent to the learning
    function".
    """

    def __init__(self) -> None:
        self._by_ethertype: Dict[int, List[FrameCallback]] = defaultdict(list)
        self._by_destination: Dict[MacAddress, List[FrameCallback]] = defaultdict(list)
        self._default: List[FrameCallback] = []

    def register_ethertype(self, ethertype: int, handler: FrameCallback) -> None:
        """Deliver frames with this EtherType to ``handler``."""
        self._by_ethertype[int(ethertype)].append(handler)

    def unregister_ethertype(self, ethertype: int, handler: FrameCallback) -> None:
        """Remove a previously registered EtherType handler."""
        handlers = self._by_ethertype.get(int(ethertype), [])
        if handler in handlers:
            handlers.remove(handler)

    def register_destination(self, destination: MacAddress, handler: FrameCallback) -> None:
        """Deliver frames addressed to ``destination`` to ``handler``."""
        self._by_destination[destination].append(handler)

    def unregister_destination(self, destination: MacAddress, handler: FrameCallback) -> None:
        """Remove a previously registered destination handler."""
        handlers = self._by_destination.get(destination, [])
        if handler in handlers:
            handlers.remove(handler)

    def register_default(self, handler: FrameCallback) -> None:
        """Deliver frames matched by no other registration to ``handler``."""
        self._default.append(handler)

    def unregister_default(self, handler: FrameCallback) -> None:
        """Remove a default handler."""
        if handler in self._default:
            self._default.remove(handler)

    def dispatch(self, frame: EthernetFrame) -> int:
        """Dispatch ``frame``; returns the number of handlers that saw it."""
        destination_handlers = self._by_destination.get(frame.destination, [])
        if destination_handlers:
            for handler in list(destination_handlers):
                handler(frame)
            return len(destination_handlers)
        type_handlers = self._by_ethertype.get(int(frame.ethertype), [])
        if type_handlers:
            for handler in list(type_handlers):
                handler(frame)
            return len(type_handlers)
        for handler in list(self._default):
            handler(frame)
        return len(self._default)


class HostStack:
    """ARP + minimal IP + UDP + ICMP echo for an end station.

    Args:
        name: host name used in traces.
        mac: the host NIC's MAC address.
        ip: the host's IPv4 address.
        send_frame: callable that puts an Ethernet frame on the wire
            (supplied by :class:`repro.lan.host.Host`, which charges CPU cost
            before calling the NIC).
    """

    def __init__(
        self,
        name: str,
        mac: MacAddress,
        ip: IPv4Address,
        send_frame: SendFrame,
    ) -> None:
        self.name = name
        self.mac = mac
        self.ip = ip
        self._send_frame = send_frame
        self.demux = EthernetDemux()
        self.demux.register_ethertype(EtherType.IPV4, self._handle_ip_frame)
        self.demux.register_ethertype(EtherType.ARP, self._handle_arp_frame)
        self._arp_table: Dict[IPv4Address, MacAddress] = {}
        self._arp_pending: Dict[IPv4Address, List[IPv4Packet]] = defaultdict(list)
        self._udp_bindings: Dict[int, UdpHandler] = {}
        self._icmp_handlers: List[IcmpHandler] = []
        self._echo_responder_enabled = True
        self._ident_counter = 0
        # Statistics
        self.ip_packets_sent = 0
        self.ip_packets_received = 0
        self.ip_packets_dropped = 0

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def handle_frame(self, frame: EthernetFrame) -> None:
        """Entry point for every frame accepted by the host's NIC."""
        self.demux.dispatch(frame)

    def _handle_arp_frame(self, frame: EthernetFrame) -> None:
        try:
            packet = ArpPacket.decode(frame.payload)
        except ProtocolError:
            return
        # Learn the sender mapping opportunistically (gratuitous ARP included).
        self._learn_arp(packet.sender_ip, packet.sender_mac)
        if packet.operation == int(ArpOperation.REQUEST) and packet.target_ip == self.ip:
            reply = packet.make_reply(self.mac)
            self._transmit(frame.source, EtherType.ARP, reply.encode())

    def _handle_ip_frame(self, frame: EthernetFrame) -> None:
        try:
            packet = IPv4Packet.decode(frame.payload)
        except ProtocolError:
            self.ip_packets_dropped += 1
            return
        if packet.destination != self.ip:
            # A promiscuous host (the agility probe) may see traffic for
            # others; a normal host simply ignores it.
            return
        self.ip_packets_received += 1
        if packet.protocol == int(IpProtocol.ICMP):
            self._handle_icmp(packet)
        elif packet.protocol == int(IpProtocol.UDP):
            self._handle_udp(packet)
        else:
            self.ip_packets_dropped += 1

    def _handle_icmp(self, packet: IPv4Packet) -> None:
        try:
            message = IcmpMessage.decode(packet.payload)
        except ProtocolError:
            self.ip_packets_dropped += 1
            return
        if message.is_request and self._echo_responder_enabled:
            reply = message.make_reply()
            self.send_ip(packet.source, IpProtocol.ICMP, reply.encode())
        for handler in list(self._icmp_handlers):
            handler(message, packet.source)

    def _handle_udp(self, packet: IPv4Packet) -> None:
        try:
            datagram = UdpDatagram.decode(packet.payload, packet.source, packet.destination)
        except ProtocolError:
            self.ip_packets_dropped += 1
            return
        handler = self._udp_bindings.get(datagram.destination_port)
        if handler is None:
            self.ip_packets_dropped += 1
            return
        handler(datagram.payload, (packet.source, datagram.source_port))

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def send_ip(self, destination: IPv4Address, protocol: int, payload: bytes) -> None:
        """Send an IP packet, resolving the next-hop MAC with ARP if needed."""
        self._ident_counter = (self._ident_counter + 1) & 0xFFFF
        packet = IPv4Packet(
            source=self.ip,
            destination=destination,
            protocol=int(protocol),
            payload=payload,
            identification=self._ident_counter,
        )
        if packet.total_length > MAX_PAYLOAD:
            raise PacketError(
                f"packet of {packet.total_length} bytes does not fit in one frame "
                "and the minimal IP layer does not fragment"
            )
        mac = self._arp_table.get(destination)
        if mac is None:
            self._arp_pending[destination].append(packet)
            self._send_arp_request(destination)
            return
        self.ip_packets_sent += 1
        self._transmit(mac, EtherType.IPV4, packet.encode())

    def send_udp(
        self,
        destination: IPv4Address,
        destination_port: int,
        source_port: int,
        payload: bytes,
    ) -> None:
        """Send a UDP datagram in a single frame."""
        if len(payload) > MAX_UDP_PAYLOAD:
            raise PacketError(
                f"UDP payload of {len(payload)} bytes exceeds the unfragmented "
                f"maximum of {MAX_UDP_PAYLOAD}"
            )
        datagram = UdpDatagram(
            source_port=source_port, destination_port=destination_port, payload=payload
        )
        self.send_ip(destination, IpProtocol.UDP, datagram.encode(self.ip, destination))

    def send_icmp_echo(
        self,
        destination: IPv4Address,
        identifier: int,
        sequence: int,
        payload: bytes,
    ) -> None:
        """Send an ICMP echo request (what ``ping`` does)."""
        message = IcmpMessage(
            icmp_type=int(IcmpType.ECHO_REQUEST),
            identifier=identifier,
            sequence=sequence,
            payload=payload,
        )
        self.send_ip(destination, IpProtocol.ICMP, message.encode())

    # ------------------------------------------------------------------
    # Bindings
    # ------------------------------------------------------------------

    def bind_udp(self, port: int, handler: UdpHandler) -> None:
        """Register a handler for UDP datagrams arriving on ``port``."""
        if port in self._udp_bindings:
            raise PacketError(f"UDP port {port} is already bound on {self.name}")
        self._udp_bindings[port] = handler

    def unbind_udp(self, port: int) -> None:
        """Remove a UDP port binding."""
        self._udp_bindings.pop(port, None)

    def add_icmp_handler(self, handler: IcmpHandler) -> None:
        """Register a callback for every ICMP message addressed to this host."""
        self._icmp_handlers.append(handler)

    def set_echo_responder(self, enabled: bool) -> None:
        """Enable/disable the automatic echo-reply behaviour."""
        self._echo_responder_enabled = enabled

    # ------------------------------------------------------------------
    # ARP
    # ------------------------------------------------------------------

    def add_static_arp(self, ip: IPv4Address, mac: MacAddress) -> None:
        """Install a static ARP entry (the topology builder pre-populates these)."""
        self._learn_arp(ip, mac)

    def arp_lookup(self, ip: IPv4Address) -> Optional[MacAddress]:
        """Return the cached MAC for ``ip``, if known."""
        return self._arp_table.get(ip)

    def _learn_arp(self, ip: IPv4Address, mac: MacAddress) -> None:
        self._arp_table[ip] = mac
        pending = self._arp_pending.pop(ip, [])
        for packet in pending:
            self.ip_packets_sent += 1
            self._transmit(mac, EtherType.IPV4, packet.encode())

    def _send_arp_request(self, target_ip: IPv4Address) -> None:
        request = ArpPacket.request(self.mac, self.ip, target_ip)
        self._transmit(BROADCAST, EtherType.ARP, request.encode())

    # ------------------------------------------------------------------
    # Frame output
    # ------------------------------------------------------------------

    def _transmit(self, destination: MacAddress, ethertype: int, payload: bytes) -> None:
        frame = EthernetFrame(
            destination=destination,
            source=self.mac,
            ethertype=int(ethertype),
            payload=payload,
        )
        self._send_frame(frame)
