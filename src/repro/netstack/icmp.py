"""ICMP echo request/reply.

The paper measures bridge latency "with the ping facility for generating ICMP
ECHOs, using various packet sizes" (Section 7.2, Figure 9), and the agility
experiment's probe is a prebuilt ICMP ECHO resent every second (Section 7.5).
This module implements just the echo message pair, which is all those
experiments need.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum

from repro.exceptions import ChecksumError, PacketError
from repro.netstack.checksum import internet_checksum

ICMP_HEADER_LENGTH = 8


class IcmpType(IntEnum):
    """ICMP message types used by the reproduction."""

    ECHO_REPLY = 0
    ECHO_REQUEST = 8


@dataclass(frozen=True)
class IcmpMessage:
    """An ICMP echo request or reply.

    Attributes:
        icmp_type: :class:`IcmpType` value.
        identifier: echo identifier (ping process id in classic ping).
        sequence: echo sequence number.
        payload: echo data; ping's packet-size parameter controls this length.
    """

    icmp_type: int
    identifier: int
    sequence: int
    payload: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if not 0 <= self.identifier <= 0xFFFF:
            raise PacketError(f"ICMP identifier out of range: {self.identifier}")
        if not 0 <= self.sequence <= 0xFFFF:
            raise PacketError(f"ICMP sequence out of range: {self.sequence}")

    @property
    def is_request(self) -> bool:
        """True for echo requests."""
        return self.icmp_type == IcmpType.ECHO_REQUEST

    @property
    def is_reply(self) -> bool:
        """True for echo replies."""
        return self.icmp_type == IcmpType.ECHO_REPLY

    def encode(self) -> bytes:
        """Serialize with a valid ICMP checksum."""
        header_no_checksum = struct.pack(
            "!BBHHH", int(self.icmp_type), 0, 0, self.identifier, self.sequence
        )
        checksum = internet_checksum(header_no_checksum + self.payload)
        header = struct.pack(
            "!BBHHH", int(self.icmp_type), 0, checksum, self.identifier, self.sequence
        )
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, verify: bool = True) -> "IcmpMessage":
        """Parse wire bytes, verifying the checksum."""
        if len(data) < ICMP_HEADER_LENGTH:
            raise PacketError(f"ICMP message too short: {len(data)} bytes")
        icmp_type, code, _checksum, identifier, sequence = struct.unpack(
            "!BBHHH", data[:ICMP_HEADER_LENGTH]
        )
        if code != 0:
            raise PacketError(f"unsupported ICMP code: {code}")
        if icmp_type not in (int(IcmpType.ECHO_REQUEST), int(IcmpType.ECHO_REPLY)):
            raise PacketError(f"unsupported ICMP type: {icmp_type}")
        if verify and internet_checksum(data) != 0:
            raise ChecksumError("ICMP checksum mismatch")
        return cls(
            icmp_type=icmp_type,
            identifier=identifier,
            sequence=sequence,
            payload=data[ICMP_HEADER_LENGTH:],
        )

    def make_reply(self) -> "IcmpMessage":
        """Build the echo reply corresponding to this echo request."""
        if not self.is_request:
            raise PacketError("make_reply() called on a non-request ICMP message")
        return IcmpMessage(
            icmp_type=int(IcmpType.ECHO_REPLY),
            identifier=self.identifier,
            sequence=self.sequence,
            payload=self.payload,
        )
