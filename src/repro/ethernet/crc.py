"""IEEE 802.3 CRC-32 (frame check sequence).

The paper notes that its prototype receives the CRC on a read but cannot set
it on a write (one of its 802.1D incompatibilities).  The simulated NICs
compute and verify the FCS so that corrupted frames can be injected and
dropped in failure-injection tests.

The implementation is the standard reflected CRC-32 (polynomial 0xEDB88320)
with a precomputed table; it matches :func:`zlib.crc32` and is kept local so
the wire format is fully self-contained and testable against a reference.
"""

from __future__ import annotations

_POLYNOMIAL = 0xEDB88320


def _build_table() -> tuple:
    table = []
    for index in range(256):
        value = index
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ _POLYNOMIAL
            else:
                value >>= 1
        table.append(value)
    return tuple(table)


_TABLE = _build_table()


def crc32_ethernet(data: bytes) -> int:
    """Compute the IEEE 802.3 CRC-32 of ``data``.

    Returns:
        The 32-bit frame check sequence as an unsigned integer.
    """
    crc = 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def verify_crc32(data: bytes, expected: int) -> bool:
    """Return True if ``expected`` is the CRC-32 of ``data``."""
    return crc32_ethernet(data) == (expected & 0xFFFFFFFF)
