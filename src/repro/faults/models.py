"""Stochastic frame loss / corruption models attached to LAN segments.

A model is a small object the segment consults once per *serviced* frame
(:meth:`~repro.lan.segment.Segment._service_next`); the segment itself only
knows the duck-typed hook — ``active`` and ``judge(frame)`` — so this module
stays free of any ``repro.lan`` import and the LAN layer stays free of any
fault import.

**Determinism.**  The model owns a private seeded :class:`random.Random`
stream and draws exactly once per serviced frame.  Segment service order is
identical across the single engine, strict sharding and relaxed
canonical-merge execution (a segment's service chain is causal on that one
segment), so the same timeline and seed drop the same frames everywhere —
this is what makes lossy scenarios bit-identical across engine modes.  The
one caveat is inherited from the fabric's canonical contract: two
same-nanosecond transmits from *different* shards onto one cut segment are
ordered canonically rather than by execution accident, exactly as their
delivery arithmetic already is.

Seeds are derived from stable material only (the timeline seed, the segment
name via CRC-32, the event's own seed field) — never from Python's
randomized ``hash()``.
"""

from __future__ import annotations

import random
import zlib

from repro.faults.spec import FaultError

#: Judgement returned for a frame the model drops outright.
LOSS = "loss"

#: Judgement returned for a frame the model corrupts (dropped by the
#: receivers' FCS check; the segment counts it separately).
CORRUPT = "corrupt"


def derive_seed(timeline_seed: int, segment_name: str, extra: int = 0) -> int:
    """A stable per-segment seed from the timeline seed and the segment name."""
    return (int(timeline_seed) << 1) ^ zlib.crc32(segment_name.encode()) ^ int(extra)


class FrameLossModel:
    """Bernoulli per-frame loss and corruption with a private seeded stream.

    Args:
        loss_rate: probability a serviced frame is silently lost on the wire.
        corrupt_rate: probability a serviced frame is delivered corrupted —
            modeled as every receiving NIC's FCS check discarding it, so it
            occupies the wire but reaches no handler.
        seed: seed for the model's private random stream.

    The two rates are disjoint outcomes of a single uniform draw per frame
    (``loss_rate + corrupt_rate <= 1``).
    """

    __slots__ = ("loss_rate", "corrupt_rate", "_random")

    def __init__(self, loss_rate: float = 0.0, corrupt_rate: float = 0.0, seed: int = 0):
        if not 0.0 <= loss_rate <= 1.0:
            raise FaultError(f"loss_rate {loss_rate} outside [0, 1]")
        if not 0.0 <= corrupt_rate <= 1.0:
            raise FaultError(f"corrupt_rate {corrupt_rate} outside [0, 1]")
        if loss_rate + corrupt_rate > 1.0:
            raise FaultError(
                f"loss_rate {loss_rate} + corrupt_rate {corrupt_rate} exceeds 1"
            )
        self.loss_rate = float(loss_rate)
        self.corrupt_rate = float(corrupt_rate)
        self._random = random.Random(seed).random

    @property
    def active(self) -> bool:
        """Whether the model can currently affect any frame."""
        return self.loss_rate > 0.0 or self.corrupt_rate > 0.0

    def judge(self, frame) -> "str | None":
        """One draw for one serviced frame: ``None`` (deliver), LOSS or CORRUPT.

        Must be called exactly once per serviced frame, in segment service
        order — the segment's service loop is the only caller.
        """
        draw = self._random()
        if draw < self.loss_rate:
            return LOSS
        if draw < self.loss_rate + self.corrupt_rate:
            return CORRUPT
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameLossModel(loss={self.loss_rate:g}, "
            f"corrupt={self.corrupt_rate:g})"
        )
