"""802.1Q VLAN trunking: the first workload beyond the paper.

Two VLAN-aware active bridges (each running the dumb-bridge switchlet plus
the VLAN learning switchlet) join four access LANs — VLAN 10 and VLAN 20 on
each side — over a single tagged trunk.  The demo shows:

* same-VLAN hosts ping each other across the trunk (frames tagged on the
  trunk, untagged on the access LANs),
* cross-VLAN traffic never arrives, even with ARP warmed manually,
* the per-VLAN learning tables and the VLAN discipline counters,
* the matrix expander scaling the same spec to more VLANs and hosts.

Run with:  python examples/vlan_trunk.py
"""

from __future__ import annotations

from repro.measurement.ping import PingRunner
from repro.scenario import expand_matrix, run_scenario


def ping(run, source_name, dest_name, label, identifier):
    source, dest = run.host(source_name), run.host(dest_name)
    runner = PingRunner(
        run.sim, source, dest.ip, payload_size=256, count=3, interval=0.1,
        identifier=identifier,
    )
    result = runner.run(start_time=run.sim.now + 0.1)
    print(f"  {label}: {result.received}/{result.sent} replies")
    return result


def main() -> None:
    print("compiling scenario 'vlan/trunk' (2 switches, VLANs 10 and 20, one trunk)")
    run = run_scenario("vlan/trunk", seed=1)
    print(f"  segments: {', '.join(run.network.segments)}")
    print(f"  hosts   : {', '.join(run.network.hosts)}")

    print("\n1. Same-VLAN traffic crosses the trunk (tagged in flight).")
    ping(run, "h1v10n1", "h2v10n1", "VLAN 10 -> VLAN 10 across trunk", 1)
    ping(run, "h1v20n1", "h2v20n1", "VLAN 20 -> VLAN 20 across trunk", 2)

    print("\n2. Cross-VLAN traffic is isolated (even with ARP warmed by hand).")
    near, wrong = run.host("h1v10n1"), run.host("h2v20n1")
    near.stack.add_static_arp(wrong.ip, wrong.mac)
    ping(run, "h1v10n1", "h2v20n1", "VLAN 10 -> VLAN 20 (must fail)", 3)

    print("\n3. Per-VLAN learning tables on switch1:")
    app = run.device("switch1").func.lookup("switchlet.vlan-bridge")
    for vlan, table in sorted(app.snapshot().items()):
        print(f"  VLAN {vlan}:")
        for mac, (age, port) in sorted(table.items()):
            print(f"    {mac} -> {port} (age {age:.3f}s)")
    stats = app.stats()
    print("  discipline counters: "
          f"forwarded={stats['frames_forwarded']} "
          f"flooded={stats['frames_flooded']} "
          f"dropped_tagged_on_access={stats['dropped_tagged_on_access']} "
          f"dropped_untagged_on_trunk={stats['dropped_untagged_on_trunk']}")

    print("\n4. The same spec scales through the matrix expander:")
    for spec in expand_matrix("vlan/trunk", {"n_vlans": [2, 3], "hosts_per_vlan": [1, 2]}):
        print(f"  {spec.name}: {len(spec.segments)} segments, "
              f"{len(spec.hosts)} hosts, {len(spec.devices)} switches")


if __name__ == "__main__":
    main()
