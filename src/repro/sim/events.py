"""Events and the event queue.

An :class:`Event` is a callback scheduled at an absolute simulated time.
The :class:`EventQueue` orders events by ``(time, sequence number)`` so that
two events scheduled for the same instant fire in the order they were
scheduled — this makes the whole simulation deterministic, which the paper's
reproducible measurements depend on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.exceptions import SchedulingError


@dataclass(order=True)
class Event:
    """A single scheduled event.

    Attributes:
        time_ns: absolute simulated time (nanoseconds) at which to fire.
        sequence: tie-breaker preserving scheduling order at equal times.
        callback: zero-argument callable invoked when the event fires.
        label: free-form string used by traces and debugging output.
        cancelled: set by :meth:`cancel`; cancelled events are skipped.
    """

    time_ns: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects keyed by time.

    The queue never removes cancelled events eagerly; they are discarded when
    popped.  This keeps :meth:`cancel` O(1), which matters because the
    802.1D switchlet cancels and re-arms many timers.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time_ns: int, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``time_ns`` and return the event."""
        event = Event(
            time_ns=time_ns,
            sequence=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time_ns(self) -> Optional[int]:
        """Return the firing time of the earliest pending event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time_ns

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def validate_schedule_time(self, now_ns: int, when_ns: int) -> None:
        """Raise :class:`SchedulingError` if ``when_ns`` lies in the past."""
        if when_ns < now_ns:
            raise SchedulingError(
                f"cannot schedule an event at t={when_ns}ns, "
                f"which is before the current time t={now_ns}ns"
            )


def describe_event(event: Event) -> dict[str, Any]:
    """Return a JSON-friendly description of an event (for traces and tests)."""
    return {
        "time_ns": event.time_ns,
        "sequence": event.sequence,
        "label": event.label,
        "cancelled": event.cancelled,
    }
