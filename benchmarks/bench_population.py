"""Population-scale fast-path benchmark: fleets, traffic matrices, hot path.

Stamps seeded station fleets (``population/office``) at 1k / 5k / 50k
stations, drives the synthetic traffic matrices (request/response service
clients, bursty on/off sources, bounded-Pareto flow sizes, diurnal load)
through the scenario machinery, and measures the pooled/slotted hot path:

* **aggregate frames/s** — NIC transmissions per CPU second over the
  measured window (``time.process_time``, gc disabled), the engine-mechanics
  rate the perf gate tracks per engine configuration;
* **p99 request-service latency** — the 99th percentile of the *simulated*
  request→response round-trip times carried by ``svc.rtt`` trace records.
  This is a deterministic result (identical across engine modes, asserted
  here), recorded for the paper-facing tables but not gated as performance;
* **peak RSS** — ``ru_maxrss`` of the isolated measuring subprocess, giving
  an honest bytes-per-station figure at each scale.

Every configuration runs in its own subprocess (``--measure-one``) so pools,
allocators and the page cache never leak between measurements, and peak RSS
is attributable to exactly one build+run.  Within a scale the benchmark
asserts frame counts and RTT distributions are identical across engine
configurations — the sharded sweeps must be measuring the *same* workload —
and a small-scale identity block replays one seeded population on all four
engine modes (single, strict shards, relaxed windows, process backend) and
records that their canonical histories match.

The process-backend configuration measures wall clock (parent CPU time is
meaningless for forked workers) and is only run on machines with at least
``WALL_MIN_CORES`` cores; below that the sweep records an explicit skip
rather than publishing numbers that measure scheduler contention.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_population.py
    PYTHONPATH=src python benchmarks/bench_population.py \
        --stations 1000 --no-record --report population-smoke.json

Results append to ``BENCH_trace.json`` under the ``population`` key unless
``--no-record`` is given; ``benchmarks/perf_gate.py`` pairs the frames/s
metrics against their previous occurrences.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
if str(SRC_ROOT) not in sys.path:
    sys.path.insert(0, str(SRC_ROOT))

from repro.measurement.analysis import latency_summary  # noqa: E402
from repro.population import install_traffic  # noqa: E402
from repro.scenario import run_scenario  # noqa: E402

RESULTS_PATH = REPO_ROOT / "BENCH_trace.json"
SCENARIO = "population/office"

#: Fleet shapes per target station count.  Station totals include the core
#: trio (gateway + two databases) on top of floors x hosts_per_floor, so
#: the keys are nominal scales, not exact host counts.
SCALES = {
    1000: {"floors": 10, "hosts_per_floor": 100, "duration": 0.5},
    5000: {"floors": 50, "hosts_per_floor": 100, "duration": 0.5},
    50000: {"floors": 500, "hosts_per_floor": 100, "duration": 0.2},
}

#: Engine configurations measured at each scale.  The 50k fleet runs the
#: relaxed sharded configuration only — the point of that scale is the
#: completed run and its RSS-per-station figure, not a full sweep.
CONFIGS = {
    1000: ["single", "shards=2/strict", "shards=4/strict", "shards=4/relaxed"],
    5000: ["single", "shards=4/strict", "shards=4/relaxed"],
    50000: ["shards=4/relaxed"],
}

#: The process-backend configuration needs real cores for its wall clock to
#: mean anything; below this the sweep records an explicit skip.
PROCESS_CONFIG = "shards=4/process"
WALL_MIN_CORES = 4

#: Small fleet replayed on all four engine modes for the identity block.
IDENTITY_PARAMS = {"floors": 2, "hosts_per_floor": 6, "duration": 0.3}
IDENTITY_MODES = {
    "single": {},
    "shards=2/strict": {"shards": 2},
    "shards=4/strict": {"shards": 4},
    "shards=2/relaxed": {"shards": 2, "sync": "relaxed"},
    "shards=4/relaxed": {"shards": 4, "sync": "relaxed"},
    "shards=4/process": {"shards": 4, "sync": "relaxed", "backend": "process"},
}


def cpu_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def config_kwargs(config: str) -> dict:
    """Engine keyword arguments for a configuration name."""
    if config == "single":
        return {}
    shard_text, _, mode = config.partition("/")
    shards = int(shard_text.split("=")[1])
    if mode == "strict":
        return {"shards": shards}
    if mode == "relaxed":
        return {"shards": shards, "sync": "relaxed"}
    if mode == "process":
        return {"shards": shards, "sync": "relaxed", "backend": "process"}
    raise ValueError(f"unknown configuration {config!r}")


def canonical_records(run):
    """Mode-independent canonical history: stable sort by (time, source).

    Per-source record order is preserved by every engine mode; the tie
    order between different sources at one timestamp is a mode artifact
    (single-engine execution order vs the fabric's shard merge), so the
    comparison canonicalizes it away exactly like the identity tests do.
    """
    trace = run.sim.trace
    if hasattr(trace, "canonical_records"):
        records = trace.canonical_records()
    else:
        records = list(trace)
    return sorted(records, key=lambda record: (record.time, record.source))


# ----------------------------------------------------------------------
# One measured configuration (runs in its own subprocess)
# ----------------------------------------------------------------------


def measure_one(scale: int, config: str) -> dict:
    """Build and run one fleet under one engine configuration."""
    shape = SCALES[scale]
    params = dict(shape)
    kwargs = config_kwargs(config)
    sequential = kwargs.get("backend") != "process"

    build_start = time.perf_counter()
    run = run_scenario(SCENARIO, params=params, **kwargs)
    traffic = install_traffic(run)
    compile_seconds = time.perf_counter() - build_start
    warm_start = time.perf_counter()
    run.warm_up()
    warm_seconds = time.perf_counter() - warm_start

    counters = run.sim.trace.counters.by_category_source
    tx_before = sum(v for (cat, _), v in counters.items() if cat == "nic.tx")
    records_before = sum(counters.values())

    gc.collect()
    gc.disable()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    run.sim.run_until(traffic.horizon)
    cpu_seconds = time.process_time() - cpu_start
    wall_seconds = time.perf_counter() - wall_start
    gc.enable()

    # Service RTTs come from svc.rtt trace records; reading them through
    # canonical_records() also pulls worker trace streams and counters back
    # into the parent on the process backend.
    rtts = traffic.service_rtts()
    rtt_stats = latency_summary(rtts)
    counters = run.sim.trace.counters.by_category_source
    frames = sum(v for (cat, _), v in counters.items() if cat == "nic.tx") - tx_before
    records = sum(counters.values()) - records_before

    result = {
        "config": config,
        "stations": len(run.spec.hosts),
        "segments": len(run.spec.segments),
        "compile_seconds": round(compile_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "wall_seconds": round(wall_seconds, 3),
        "frames": frames,
        "records": records,
        "rtt_samples": len(rtts),
        "p99_rtt_ns": int(rtt_stats["p99"]) if rtts else None,
        "rtt_ns": rtt_stats,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if sequential:
        # Parent CPU time covers the whole run only when no forked workers
        # execute windows; the process backend records wall clock instead.
        result["cpu_seconds"] = round(cpu_seconds, 3)
        result["frames_per_second"] = round(frames / cpu_seconds, 1)
        result["pool"] = traffic.pool_statistics()
        result["wheel"] = traffic.wheel_statistics()
        result["coalesced"] = sum(
            run.segment(spec.name).frames_coalesced for spec in run.spec.segments
        )
        result["traffic"] = traffic.traffic_statistics()
    else:
        result["wall_frames_per_second"] = round(frames / wall_seconds, 1)
    return result


def measure_in_subprocess(scale: int, config: str) -> dict:
    """Run one configuration in an isolated interpreter and parse its JSON."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT)
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--measure-one",
            f"--scale={scale}",
            f"--config={config}",
        ],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"measurement subprocess failed for {config}@{scale}:\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


# ----------------------------------------------------------------------
# Identity block
# ----------------------------------------------------------------------


def run_identity_block() -> dict:
    """Replay one seeded fleet on every engine mode; compare canonically."""

    def observe(kwargs):
        run = run_scenario(SCENARIO, params=IDENTITY_PARAMS, **kwargs)
        traffic = install_traffic(run)
        run.warm_up()
        run.sim.run_until(traffic.horizon)
        return (
            canonical_records(run),
            dict(run.sim.trace.counters.by_category_source),
            run.sim.now,
            traffic.service_rtts(),
        )

    modes = dict(IDENTITY_MODES)
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        modes.pop("shards=4/process")
    baseline = observe(modes.pop("single"))
    mismatches = []
    for name, kwargs in modes.items():
        if observe(kwargs) != baseline:
            mismatches.append(name)
    return {
        "scenario": SCENARIO,
        "params": IDENTITY_PARAMS,
        "modes": ["single", *modes],
        "records": len(baseline[0]),
        "rtt_samples": len(baseline[3]),
        "identical": not mismatches,
        "mismatches": mismatches,
    }


# ----------------------------------------------------------------------
# Sweep
# ----------------------------------------------------------------------


def run_sweep(scales) -> dict:
    cores = cpu_cores()
    entry = {
        "benchmark": "population",
        "python": sys.version.split()[0],
        "cpu_cores": cores,
        "scenario": SCENARIO,
        "scales": {},
    }

    for scale in scales:
        shape = SCALES[scale]
        configs = list(CONFIGS[scale])
        print(
            f"population scale {scale}: floors={shape['floors']} "
            f"hosts_per_floor={shape['hosts_per_floor']} "
            f"duration={shape['duration']}s"
        )
        block = {**shape, "configs": {}}
        for config in configs:
            result = measure_in_subprocess(scale, config)
            block["configs"][config] = result
            rate = result.get("frames_per_second")
            rate_text = f"{rate:,.0f} frames/s" if rate else "wall-only"
            print(
                f"  {config:<18} {result['frames']:>8,} frames  {rate_text:>18}  "
                f"p99 {result['p99_rtt_ns'] / 1e6 if result['p99_rtt_ns'] else 0:.2f} ms  "
                f"rss {result['peak_rss_kb'] / 1024:.0f} MB"
            )

        # The process backend measures wall clock; that is only meaningful
        # with real cores behind the forked workers.
        if scale != 50000:
            if cores >= WALL_MIN_CORES and hasattr(os, "fork"):
                result = measure_in_subprocess(scale, PROCESS_CONFIG)
                block["configs"][PROCESS_CONFIG] = result
                print(
                    f"  {PROCESS_CONFIG:<18} {result['frames']:>8,} frames  "
                    f"{result['wall_frames_per_second']:>10,.0f} wall-f/s"
                )
            else:
                block["process_skipped"] = (
                    f"needs >= {WALL_MIN_CORES} cores for an honest wall "
                    f"clock (have {cores})"
                )
                print(f"  {PROCESS_CONFIG:<18} skipped: {block['process_skipped']}")

        # Same seed, same fleet: every configuration must have measured the
        # same workload.  Frame counts and the simulated latency
        # distribution are deterministic results, not performance.
        frames = {c: r["frames"] for c, r in block["configs"].items()}
        assert len(set(frames.values())) == 1, f"frame counts diverge: {frames}"
        p99s = {c: r["p99_rtt_ns"] for c, r in block["configs"].items()}
        assert len(set(p99s.values())) == 1, f"p99 RTTs diverge: {p99s}"

        stations = next(iter(block["configs"].values()))["stations"]
        block["stations"] = stations
        block["p99_rtt_ns"] = next(iter(p99s.values()))
        rss = min(r["peak_rss_kb"] for r in block["configs"].values())
        block["rss_kb_per_station"] = round(rss / stations, 2)
        strict = block["configs"].get("shards=4/strict")
        relaxed = block["configs"].get("shards=4/relaxed")
        if strict and relaxed and strict.get("frames_per_second"):
            block["relaxed_speedup"] = round(
                relaxed["frames_per_second"] / strict["frames_per_second"], 3
            )
        entry["scales"][str(scale)] = block

    print("identity: replaying the seeded fleet on every engine mode...")
    entry["identity"] = run_identity_block()
    print(
        f"  {len(entry['identity']['modes'])} modes, "
        f"{entry['identity']['records']} canonical records: "
        f"{'identical' if entry['identity']['identical'] else 'MISMATCH'}"
    )
    assert entry["identity"]["identical"], entry["identity"]["mismatches"]
    return entry


def build_run_report() -> dict:
    """A telemetry-instrumented RunReport over the small identity fleet.

    Exported with ``--report`` so the CI artifact carries the full metric
    registry, segment statistics and wall-phase breakdown alongside the
    sweep numbers.  The measured sweep itself always runs telemetry-off.
    """
    run = run_scenario(
        SCENARIO, params=IDENTITY_PARAMS, shards=4, sync="relaxed", telemetry=True
    )
    traffic = install_traffic(run)
    run.warm_up()
    run.sim.run_until(traffic.horizon)
    return run.report(latency_ns=traffic.service_rtts()).to_dict()


def record_entry(entry: dict) -> None:
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text())
    # The RunReport is a CI artifact payload, not a tracked benchmark
    # metric — keep it out of the append-only history.
    entry = {k: v for k, v in entry.items() if k != "run_report"}
    history.append({"population": entry})
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"recorded entry {len(history)} in {RESULTS_PATH.name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--measure-one", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--config", help=argparse.SUPPRESS)
    parser.add_argument(
        "--stations",
        type=int,
        action="append",
        choices=sorted(SCALES),
        help="restrict the sweep to the given scale(s); repeatable",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="do not append the entry to BENCH_trace.json",
    )
    parser.add_argument(
        "--report",
        type=Path,
        help="also write the entry JSON to this path (CI artifact)",
    )
    args = parser.parse_args(argv)

    if args.measure_one:
        json.dump(measure_one(args.scale, args.config), sys.stdout)
        return 0

    scales = args.stations or sorted(SCALES)
    entry = run_sweep(scales)
    if args.report:
        entry["run_report"] = build_run_report()
        args.report.write_text(json.dumps(entry, indent=2) + "\n")
        print(f"report written to {args.report}")
    if not args.no_record:
        record_entry(entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
