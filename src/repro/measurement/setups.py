"""The paper's experimental configurations.

Three two-host configurations (Figures 7 and 8):

* **direct** — two hosts on one 100 Mb/s LAN (the "best case" baseline),
* **repeater** — two LANs joined by the C buffered repeater,
* **bridged** — two LANs joined by the active bridge running the switchlet
  stack (dumb → learning → spanning tree),
* **static** — two LANs joined by a fixed-function learning bridge (the
  DEC-LANbridge-like device; used by the ablation benchmark),

plus the Section 7.5 **ring**: a chain of active bridges between the two
NICs of a measurement host, each bridge running the DEC protocol with the
IEEE protocol loaded-but-idle and the control switchlet armed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.c_repeater import BufferedRepeater
from repro.baselines.static_bridge import StaticLearningBridge
from repro.core.node import ActiveNode
from repro.costs.model import CostModel
from repro.lan.host import Host
from repro.lan.segment import Segment
from repro.lan.topology import Network, NetworkBuilder
from repro.switchlets.packaging import (
    control_package,
    dec_spanning_tree_package,
    dumb_bridge_package,
    learning_bridge_package,
    spanning_tree_package,
)

#: Extra settling time after the forwarding-delay window before measuring.
SPANNING_TREE_WARMUP = 31.0

#: Settling time for configurations with no spanning tree.
BASIC_WARMUP = 0.1


@dataclass
class PairSetup:
    """A two-host configuration ready for ping/ttcp measurements.

    Attributes:
        network: the assembled network.
        left / right: the two measurement hosts.
        device: the interconnecting device (``None`` for the direct baseline).
        ready_time: simulated time after which the path is forwarding (the
            spanning-tree configurations need ~30 s of warm-up).
        label: short name used in benchmark output.
    """

    network: Network
    left: Host
    right: Host
    device: Optional[object]
    ready_time: float
    label: str


@dataclass
class RingSetup:
    """The Section 7.5 ring of active bridges.

    Attributes:
        network: the assembled network.
        bridges: the active bridges, in chain order.
        left_segment / right_segment: the end segments the measurement
            host's two NICs attach to.
        ready_time: time by which the old (DEC) protocol has converged.
    """

    network: Network
    bridges: List[ActiveNode] = field(default_factory=list)
    left_segment: Optional[Segment] = None
    right_segment: Optional[Segment] = None
    ready_time: float = SPANNING_TREE_WARMUP


# ---------------------------------------------------------------------------
# Two-host configurations
# ---------------------------------------------------------------------------


def build_direct_pair(
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    trace_sinks=None,
) -> PairSetup:
    """Two hosts on a single LAN (Figure 8's baseline setup)."""
    builder = NetworkBuilder(seed=seed, cost_model=cost_model, trace_sinks=trace_sinks)
    builder.add_segment("lan1")
    left = builder.add_host("host1", "lan1")
    right = builder.add_host("host2", "lan1")
    builder.populate_static_arp()
    network = builder.build()
    return PairSetup(
        network=network,
        left=left,
        right=right,
        device=None,
        ready_time=BASIC_WARMUP,
        label="direct",
    )


def build_repeater_pair(
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    trace_sinks=None,
) -> PairSetup:
    """Two LANs joined by the C buffered repeater."""
    builder = NetworkBuilder(seed=seed, cost_model=cost_model, trace_sinks=trace_sinks)
    builder.add_segment("lan1")
    builder.add_segment("lan2")
    left = builder.add_host("host1", "lan1")
    right = builder.add_host("host2", "lan2")
    builder.populate_static_arp()
    network = builder.build()
    repeater = BufferedRepeater(network.sim, "repeater", cost_model=network.cost_model)
    repeater.add_interface("eth0", network.segment("lan1"))
    repeater.add_interface("eth1", network.segment("lan2"))
    builder.register_station("repeater", repeater)
    return PairSetup(
        network=network,
        left=left,
        right=right,
        device=repeater,
        ready_time=BASIC_WARMUP,
        label="c-repeater",
    )


def build_bridged_pair(
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    include_spanning_tree: bool = True,
    include_learning: bool = True,
    trace_sinks=None,
) -> PairSetup:
    """Two LANs joined by the active bridge (Figure 7's bridging setup).

    The bridge is programmed exactly as in Section 5.3: the dumb bridge
    switchlet, then (optionally) the learning switchlet, then (optionally)
    the 802.1D spanning-tree switchlet.
    """
    builder = NetworkBuilder(seed=seed, cost_model=cost_model, trace_sinks=trace_sinks)
    builder.add_segment("lan1")
    builder.add_segment("lan2")
    left = builder.add_host("host1", "lan1")
    right = builder.add_host("host2", "lan2")
    builder.populate_static_arp()
    network = builder.build()
    bridge = ActiveNode(network.sim, "bridge", cost_model=network.cost_model)
    bridge.add_interface("eth0", network.segment("lan1"))
    bridge.add_interface("eth1", network.segment("lan2"))
    environment = bridge.environment.modules
    bridge.load_switchlet(dumb_bridge_package(environment))
    if include_learning:
        bridge.load_switchlet(learning_bridge_package(environment))
    if include_spanning_tree:
        bridge.load_switchlet(spanning_tree_package(environment, autostart=True))
    builder.register_station("bridge", bridge)
    ready_time = SPANNING_TREE_WARMUP if include_spanning_tree else BASIC_WARMUP
    return PairSetup(
        network=network,
        left=left,
        right=right,
        device=bridge,
        ready_time=ready_time,
        label="active-bridge",
    )


def build_static_bridge_pair(
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    trace_sinks=None,
) -> PairSetup:
    """Two LANs joined by a fixed-function learning bridge (ablation baseline)."""
    builder = NetworkBuilder(seed=seed, cost_model=cost_model, trace_sinks=trace_sinks)
    builder.add_segment("lan1")
    builder.add_segment("lan2")
    left = builder.add_host("host1", "lan1")
    right = builder.add_host("host2", "lan2")
    builder.populate_static_arp()
    network = builder.build()
    bridge = StaticLearningBridge(network.sim, "lanbridge", cost_model=network.cost_model)
    bridge.add_interface("eth0", network.segment("lan1"))
    bridge.add_interface("eth1", network.segment("lan2"))
    builder.register_station("lanbridge", bridge)
    return PairSetup(
        network=network,
        left=left,
        right=right,
        device=bridge,
        ready_time=BASIC_WARMUP,
        label="static-bridge",
    )


#: The three configurations of the paper's Figures 9 and 10, by label.
PAIR_BUILDERS = {
    "direct": build_direct_pair,
    "c-repeater": build_repeater_pair,
    "active-bridge": build_bridged_pair,
}


# ---------------------------------------------------------------------------
# The Section 7.5 ring
# ---------------------------------------------------------------------------


def build_ring(
    n_bridges: int = 3,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    with_control: bool = True,
    suppression_period: float = 30.0,
    validation_delay: float = 60.0,
    buggy_new_protocol: bool = False,
    trace_sinks=None,
) -> RingSetup:
    """A chain of active bridges between two end segments.

    Each bridge runs: dumb bridge, learning bridge, the DEC spanning tree
    (started), the IEEE spanning tree (loaded, idle), and — when
    ``with_control`` is true — the transition control switchlet.  The
    measurement host of Section 7.5 closes the chain into a ring with its two
    NICs but does not forward, so the topology the bridges see is loop-free.

    Args:
        n_bridges: number of bridges in the chain (the paper uses three).
        buggy_new_protocol: ship the deliberately faulty 802.1D variant as
            the new protocol, to exercise the automatic fallback.
    """
    if n_bridges < 1:
        raise ValueError("a ring needs at least one bridge")
    builder = NetworkBuilder(seed=seed, cost_model=cost_model, trace_sinks=trace_sinks)
    segments = []
    for index in range(n_bridges + 1):
        segments.append(builder.add_segment(f"seg{index}"))
    network = builder.build()
    setup = RingSetup(
        network=network,
        left_segment=segments[0],
        right_segment=segments[-1],
    )
    for index in range(n_bridges):
        bridge = ActiveNode(network.sim, f"bridge{index + 1}", cost_model=network.cost_model)
        bridge.add_interface("eth0", segments[index])
        bridge.add_interface("eth1", segments[index + 1])
        environment = bridge.environment.modules
        bridge.load_switchlet(dumb_bridge_package(environment))
        bridge.load_switchlet(learning_bridge_package(environment))
        bridge.load_switchlet(dec_spanning_tree_package(environment))
        bridge.load_switchlet(
            spanning_tree_package(environment, autostart=False, buggy=buggy_new_protocol)
        )
        if with_control:
            bridge.load_switchlet(
                control_package(
                    environment,
                    suppression_period=suppression_period,
                    validation_delay=validation_delay,
                )
            )
        builder.register_station(bridge.name, bridge)
        setup.bridges.append(bridge)
    return setup
