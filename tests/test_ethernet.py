"""Tests for the Ethernet substrate (MAC addresses, CRC, frames)."""

from __future__ import annotations

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ethernet.crc import crc32_ethernet, verify_crc32
from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import (
    EthernetFrame,
    HEADER_LENGTH,
    FCS_LENGTH,
    MIN_PAYLOAD,
    MAX_PAYLOAD,
)
from repro.ethernet.mac import (
    ALL_BRIDGES_MULTICAST,
    BROADCAST,
    DEC_MANAGEMENT_MULTICAST,
    MacAddress,
)
from repro.exceptions import FrameError


# ---------------------------------------------------------------------------
# MAC addresses
# ---------------------------------------------------------------------------


class TestMacAddress:
    def test_string_roundtrip(self):
        mac = MacAddress.from_string("aa:bb:cc:dd:ee:ff")
        assert str(mac) == "aa:bb:cc:dd:ee:ff"
        assert MacAddress.from_string(str(mac)) == mac

    def test_dash_separator_accepted(self):
        assert MacAddress.from_string("aa-bb-cc-dd-ee-ff") == MacAddress.from_string(
            "aa:bb:cc:dd:ee:ff"
        )

    def test_int_roundtrip(self):
        mac = MacAddress.from_int(0x0000_0A0B_0C0D)
        assert mac.to_int() == 0x0A0B0C0D
        assert MacAddress.from_int(mac.to_int()) == mac

    def test_invalid_length_rejected(self):
        with pytest.raises(FrameError):
            MacAddress(b"\x01\x02\x03")

    def test_invalid_string_rejected(self):
        with pytest.raises(FrameError):
            MacAddress.from_string("not-a-mac")
        with pytest.raises(FrameError):
            MacAddress.from_string("zz:bb:cc:dd:ee:ff")

    def test_broadcast_properties(self):
        assert BROADCAST.is_broadcast
        assert BROADCAST.is_multicast
        assert not BROADCAST.is_unicast

    def test_well_known_multicast_groups(self):
        assert ALL_BRIDGES_MULTICAST.is_multicast
        assert not ALL_BRIDGES_MULTICAST.is_broadcast
        assert DEC_MANAGEMENT_MULTICAST.is_multicast
        assert ALL_BRIDGES_MULTICAST != DEC_MANAGEMENT_MULTICAST

    def test_locally_administered(self):
        mac = MacAddress.locally_administered(42)
        assert mac.is_locally_administered
        assert mac.is_unicast
        assert MacAddress.locally_administered(42) == mac
        assert MacAddress.locally_administered(43) != mac

    def test_locally_administered_range_check(self):
        with pytest.raises(FrameError):
            MacAddress.locally_administered(1 << 24)

    def test_ordering_and_hashing(self):
        low = MacAddress.from_string("00:00:00:00:00:01")
        high = MacAddress.from_string("00:00:00:00:00:02")
        assert low < high
        assert len({low, high, MacAddress.from_string("00:00:00:00:00:01")}) == 2

    @given(st.binary(min_size=6, max_size=6))
    def test_octets_roundtrip(self, octets):
        assert MacAddress(octets).octets == octets


# ---------------------------------------------------------------------------
# CRC-32
# ---------------------------------------------------------------------------


class TestCrc:
    def test_matches_zlib(self):
        data = b"active bridging"
        assert crc32_ethernet(data) == zlib.crc32(data) & 0xFFFFFFFF

    def test_verify(self):
        data = b"hello world"
        assert verify_crc32(data, crc32_ethernet(data))
        assert not verify_crc32(data, crc32_ethernet(data) ^ 1)

    def test_empty_input(self):
        assert crc32_ethernet(b"") == zlib.crc32(b"") & 0xFFFFFFFF

    @given(st.binary(max_size=2048))
    @settings(max_examples=100, deadline=None)
    def test_always_matches_zlib(self, data):
        assert crc32_ethernet(data) == zlib.crc32(data) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# EtherType
# ---------------------------------------------------------------------------


class TestEtherType:
    def test_describe_known(self):
        assert EtherType.describe(0x0800) == "IPV4"

    def test_describe_unknown(self):
        assert EtherType.describe(0x1234) == "0x1234"

    def test_values_are_distinct(self):
        values = [int(member) for member in EtherType]
        assert len(values) == len(set(values))


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


def _make_frame(payload=b"hello", ethertype=EtherType.IPV4):
    return EthernetFrame(
        destination=MacAddress.from_string("02:00:00:00:00:02"),
        source=MacAddress.from_string("02:00:00:00:00:01"),
        ethertype=int(ethertype),
        payload=payload,
    )


class TestEthernetFrame:
    def test_encode_decode_roundtrip(self):
        frame = _make_frame(b"payload bytes")
        decoded = EthernetFrame.decode(frame.encode())
        assert decoded.destination == frame.destination
        assert decoded.source == frame.source
        assert decoded.ethertype == frame.ethertype
        # Short payloads come back padded; the prefix must match.
        assert decoded.payload[: len(frame.payload)] == frame.payload

    def test_padding_to_minimum(self):
        frame = _make_frame(b"x")
        assert len(frame.padded_payload) == MIN_PAYLOAD
        assert frame.frame_length == HEADER_LENGTH + MIN_PAYLOAD + FCS_LENGTH

    def test_long_payload_not_padded(self):
        frame = _make_frame(b"a" * 1000)
        assert len(frame.padded_payload) == 1000

    def test_mtu_enforced(self):
        with pytest.raises(FrameError):
            _make_frame(b"a" * (MAX_PAYLOAD + 1))

    def test_bad_fcs_rejected(self):
        encoded = bytearray(_make_frame(b"corrupt me please").encode())
        encoded[20] ^= 0xFF
        with pytest.raises(FrameError):
            EthernetFrame.decode(bytes(encoded))

    def test_bad_fcs_ignored_when_not_verifying(self):
        encoded = bytearray(_make_frame(b"corrupt me please").encode())
        encoded[20] ^= 0xFF
        frame = EthernetFrame.decode(bytes(encoded), verify_fcs=False)
        assert frame.source == MacAddress.from_string("02:00:00:00:00:01")

    def test_too_short_rejected(self):
        with pytest.raises(FrameError):
            EthernetFrame.decode(b"\x00" * 10)

    def test_multicast_and_broadcast_flags(self):
        unicast = _make_frame()
        assert not unicast.is_multicast
        broadcast = EthernetFrame(
            destination=BROADCAST,
            source=MacAddress.from_string("02:00:00:00:00:01"),
            ethertype=int(EtherType.ARP),
            payload=b"",
        )
        assert broadcast.is_broadcast
        assert broadcast.is_multicast

    def test_invalid_ethertype(self):
        with pytest.raises(FrameError):
            EthernetFrame(
                destination=BROADCAST,
                source=MacAddress.from_string("02:00:00:00:00:01"),
                ethertype=0x1_0000,
                payload=b"",
            )

    def test_wire_length_includes_overheads(self):
        frame = _make_frame(b"a" * 100)
        assert frame.wire_length > frame.frame_length

    def test_with_payload(self):
        frame = _make_frame(b"one")
        other = frame.with_payload(b"two")
        assert other.payload == b"two"
        assert other.source == frame.source

    def test_describe_mentions_type(self):
        assert "IPV4" in _make_frame().describe()

    @given(st.binary(min_size=MIN_PAYLOAD, max_size=MAX_PAYLOAD))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_payload_exact_when_at_least_minimum(self, payload):
        frame = _make_frame(payload)
        decoded = EthernetFrame.decode(frame.encode())
        assert decoded.payload == payload

    @given(st.integers(min_value=0, max_value=MAX_PAYLOAD))
    @settings(max_examples=50, deadline=None)
    def test_frame_length_formula(self, size):
        frame = _make_frame(b"z" * size)
        expected_payload = max(size, MIN_PAYLOAD)
        assert frame.frame_length == HEADER_LENGTH + expected_payload + FCS_LENGTH
