"""Exception hierarchy shared across the :mod:`repro` package.

The paper's system distinguishes three broad failure classes and so do we:

* simulation/kernel misuse (``SimulationError``),
* malformed or unparsable wire data (``ProtocolError`` and friends),
* violations of the switchlet safety model (``SwitchletError`` and friends).

Every subpackage raises subclasses of :class:`ReproError`, which makes it easy
for applications to catch "anything this library raised" with a single clause
while still allowing fine-grained handling.
"""


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (e.g. scheduling in the past)."""


class SchedulingError(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""


class FabricBackendError(SimulationError):
    """A sharded-fabric execution backend failed or was misused.

    Raised by the multiprocess shard backend when a worker process dies or
    its pipe hits EOF mid-window (carrying the failing shard and the window
    bounds it was granted), and for backend misuse such as dispatching again
    after a process-backed run without a ``reset()``.

    Attributes:
        shard_index: index of the failing shard, or ``None`` when the error
            is not tied to one shard.
        window: ``(start_ns, bound_ns)`` of the window or barrier the shard
            was executing, or ``None``.
        flight: recent flight-recorder spans for the failing shard (a list
            of ``{"kind", "window", "wall_s"}`` dicts, newest last), or
            ``None`` when no recorder was running.
    """

    def __init__(self, message, shard_index=None, window=None, flight=None):
        super().__init__(message)
        self.shard_index = shard_index
        self.window = window
        self.flight = flight


# ---------------------------------------------------------------------------
# Wire formats / protocol substrates
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """A frame or packet could not be parsed or violates its protocol."""


class FrameError(ProtocolError):
    """Malformed Ethernet frame (bad length, bad CRC, bad address)."""


class PacketError(ProtocolError):
    """Malformed IP/UDP/ICMP/TFTP packet."""


class ChecksumError(PacketError):
    """A checksum did not verify."""


# ---------------------------------------------------------------------------
# LAN substrate
# ---------------------------------------------------------------------------


class TopologyError(ReproError):
    """Invalid network construction (duplicate names, unattached NICs...)."""


class InterfaceError(ReproError):
    """A NIC/port operation was invalid (already attached, down, ...)."""


# ---------------------------------------------------------------------------
# Switchlet infrastructure (the paper's safety model)
# ---------------------------------------------------------------------------


class SwitchletError(ReproError):
    """Base class for switchlet loading and execution failures."""


class SignatureMismatch(SwitchletError):
    """The interface digest a switchlet was compiled against does not match.

    This is the analogue of Caml's link-time MD5 interface check: a switchlet
    built against a different (e.g. attacker-supplied) signature fails to
    link.
    """


class ThinningViolation(SwitchletError):
    """A switchlet attempted to reach a name excluded by module thinning."""


class LoadError(SwitchletError):
    """The switchlet source failed to compile or its top level raised."""


class AlreadyBound(SwitchletError):
    """A second switchlet tried to bind an input/output port already bound.

    Mirrors the ``Already_bound`` exception of the paper's ``Unixnet``
    interface (Figure 4): the first switchlet to bind a given port succeeds
    and all others fail.
    """


class NoInterface(SwitchletError):
    """No (further) network interface is available to bind.

    Mirrors the ``No_interface`` exception of the paper's ``Unixnet``.
    """


class RegistrationError(SwitchletError):
    """A switchlet registration (``Func.register``) was invalid."""
