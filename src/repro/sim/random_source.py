"""Deterministic randomness for experiments.

All stochastic choices in the reproduction (workload inter-arrival jitter,
payload contents, bridge identifier assignment in randomized topologies) draw
from a :class:`RandomSource` owned by the simulator, so a single seed pins
down an entire experiment.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class RandomSource:
    """A seeded wrapper around :class:`random.Random` with networking helpers."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reseed(self, seed: int) -> None:
        """Reset the underlying generator with a new seed."""
        self.seed = seed
        self._rng = random.Random(seed)

    # -- thin passthroughs -------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element of ``seq``."""
        return self._rng.choice(seq)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    # -- networking helpers --------------------------------------------------

    def payload(self, length: int) -> bytes:
        """Return ``length`` pseudo-random bytes (used as frame payloads)."""
        if length <= 0:
            return b""
        return bytes(self._rng.getrandbits(8) for _ in range(length))

    def mac_suffix(self) -> bytes:
        """Return three random bytes usable as the low half of a MAC address."""
        return bytes(self._rng.getrandbits(8) for _ in range(3))

    def jitter(self, nominal: float, fraction: float = 0.1) -> float:
        """Return ``nominal`` perturbed by up to +/- ``fraction`` of itself."""
        if nominal <= 0:
            return nominal
        spread = nominal * fraction
        return self._rng.uniform(nominal - spread, nominal + spread)
