"""Population-scale fleets: typed stations, seeded factories, traffic matrices.

The population layer turns the simulator from a topology testbed into an
operational-network generator: typed station roles
(:mod:`repro.population.roles`), a seeded :class:`HostFactory` that
stamps fleets onto segment graphs (:mod:`repro.population.factory`), and
a synthetic traffic synthesizer driving request/response services,
bursty on/off sources, heavy-tailed flow sizes and a diurnal load curve
through the ordinary scenario machinery
(:mod:`repro.population.traffic`).  The catalog entries live in
:mod:`repro.population.catalog` and register themselves when the
scenario package imports.
"""

from repro.population.factory import HostFactory, PopulationPlan, StationPlan
from repro.population.roles import SERVICES, STATION_ROLES, ServiceSpec, StationRole, role_of
from repro.population.traffic import (
    TRAFFIC_DEFAULTS,
    TRAFFIC_KINDS,
    PopulationTraffic,
    bounded_pareto,
    diurnal_factor,
    install_traffic,
    merged_params,
)

__all__ = [
    "SERVICES",
    "STATION_ROLES",
    "TRAFFIC_DEFAULTS",
    "TRAFFIC_KINDS",
    "HostFactory",
    "PopulationPlan",
    "PopulationTraffic",
    "ServiceSpec",
    "StationPlan",
    "StationRole",
    "bounded_pareto",
    "diurnal_factor",
    "install_traffic",
    "merged_params",
    "role_of",
]
